// Package ridge synthesizes master fingerprints: the ground-truth ridge
// structure of a finger independent of any capture device. A Master carries
// a pattern class (arch/loop/whorl), a singular-point-based orientation
// field (Sherlock–Monro model), a ridge frequency field, and a ground-truth
// minutiae set. Sensor models in internal/sensor derive impressions from a
// Master; the image path grows a ridge image from the same fields with
// iterative Gabor filtering (the SFinGe approach).
//
// Master coordinates are physical millimetres, origin at the finger pad
// centre, x to the right and y up (mathematical convention); the sensor
// layer converts to pixel coordinates.
package ridge

import (
	"fmt"
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/rng"
)

// Class is the Henry-system pattern class of a fingerprint.
type Class int

const (
	// Arch: ridges flow side to side with a central bump; no singular points.
	Arch Class = iota + 1
	// TentedArch: arch with a central up-thrust (one core over one delta).
	TentedArch
	// LeftLoop: ridges enter and leave on the left around one core.
	LeftLoop
	// RightLoop: ridges enter and leave on the right around one core.
	RightLoop
	// Whorl: concentric pattern with two cores and two deltas.
	Whorl
)

// String returns the conventional class name.
func (c Class) String() string {
	switch c {
	case Arch:
		return "arch"
	case TentedArch:
		return "tented arch"
	case LeftLoop:
		return "left loop"
	case RightLoop:
		return "right loop"
	case Whorl:
		return "whorl"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// classFrequencies are the natural occurrence frequencies of the five
// classes in the population (approximate values from Maltoni et al.,
// Handbook of Fingerprint Recognition).
var classFrequencies = []float64{
	0.037, // Arch
	0.029, // TentedArch
	0.338, // LeftLoop
	0.317, // RightLoop
	0.279, // Whorl
}

// GroundTruth is one true minutia of a master fingerprint.
type GroundTruth struct {
	// Pos is the position in mm, pad-centred, y-up.
	Pos geom.Point
	// Angle is the ridge direction in radians.
	Angle float64
	// Kind is ending or bifurcation.
	Kind minutiae.Type
	// Prominence in (0, 1] is the intrinsic robustness of the feature:
	// low-prominence minutiae are the first to disappear under poor
	// capture conditions.
	Prominence float64
}

// Master is a device-independent synthetic fingerprint.
type Master struct {
	// ID identifies the finger, e.g. "subject/17/finger/R-index".
	ID string
	// Class is the pattern class.
	Class Class
	// Pad is the bounding box of the finger pad in mm.
	Pad geom.Rect
	// Cores and Deltas are the singular points of the orientation field.
	Cores, Deltas []geom.Point
	// PeriodMM is the base inter-ridge distance in mm (typically ~0.45).
	PeriodMM float64
	// Minutiae is the ground-truth feature set.
	Minutiae []GroundTruth

	// Arch model parameters (used when Class == Arch).
	archAmp, archSigmaX, archSigmaY, archY0 float64
	// seed keys the deterministic texture used by image synthesis.
	seed uint64
}

// GenOptions configures master generation. The zero value uses defaults
// matched to adult index fingers at 500 dpi studies.
type GenOptions struct {
	// MeanMinutiae is the expected ground-truth minutiae count (default 62,
	// typical for a full pad).
	MeanMinutiae float64
	// PadWidth, PadHeight are the pad dimensions in mm (defaults 18 × 24).
	PadWidth, PadHeight float64
	// ForceClass, when non-zero, fixes the pattern class.
	ForceClass Class
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MeanMinutiae == 0 {
		o.MeanMinutiae = 62
	}
	if o.PadWidth == 0 {
		o.PadWidth = 18
	}
	if o.PadHeight == 0 {
		o.PadHeight = 24
	}
	return o
}

// Generate creates a random master fingerprint. All randomness is drawn
// from src, so equal sources generate identical masters.
func Generate(id string, src *rng.Source, opts GenOptions) *Master {
	opts = opts.withDefaults()
	m := &Master{
		ID:  id,
		Pad: geom.CenteredRect(geom.Point{}, opts.PadWidth, opts.PadHeight),
		// Inter-ridge period: mean 0.45 mm, tight spread, hard floor.
		PeriodMM: src.TruncNorm(0.45, 0.04, 0.32, 0.60),
		seed:     src.Uint64(),
	}
	if opts.ForceClass != 0 {
		m.Class = opts.ForceClass
	} else {
		m.Class = Class(src.Pick(classFrequencies) + 1)
	}
	m.placeSingularities(src)
	m.generateMinutiae(src, opts.MeanMinutiae)
	return m
}

// placeSingularities positions cores and deltas according to the class,
// with natural jitter.
func (m *Master) placeSingularities(src *rng.Source) {
	j := func(sd float64) float64 { return src.NormMS(0, sd) }
	switch m.Class {
	case Arch:
		// No singular points; smooth bump model.
		m.archAmp = src.TruncNorm(0.9, 0.2, 0.4, 1.5)
		m.archSigmaX = src.TruncNorm(6, 1, 4, 9)
		m.archSigmaY = src.TruncNorm(5, 1, 3, 8)
		m.archY0 = j(1.5)
	case TentedArch:
		x := j(0.8)
		m.Cores = []geom.Point{{X: x, Y: 1.5 + j(0.8)}}
		m.Deltas = []geom.Point{{X: x + j(0.4), Y: -6.5 + j(0.8)}}
	case LeftLoop:
		m.Cores = []geom.Point{{X: -0.5 + j(0.8), Y: 2 + j(0.8)}}
		m.Deltas = []geom.Point{{X: 4.5 + j(0.8), Y: -6 + j(0.8)}}
	case RightLoop:
		m.Cores = []geom.Point{{X: 0.5 + j(0.8), Y: 2 + j(0.8)}}
		m.Deltas = []geom.Point{{X: -4.5 + j(0.8), Y: -6 + j(0.8)}}
	case Whorl:
		dx := 0.8 + math.Abs(j(0.4))
		m.Cores = []geom.Point{
			{X: -dx + j(0.3), Y: 2.8 + j(0.6)},
			{X: dx + j(0.3), Y: 1.2 + j(0.6)},
		}
		m.Deltas = []geom.Point{
			{X: -5 + j(0.8), Y: -5.5 + j(0.8)},
			{X: 5 + j(0.8), Y: -5.5 + j(0.8)},
		}
	}
}

// OrientationAt returns the ridge orientation at p in [0, π). The field
// follows the Sherlock–Monro zero-pole model: each core contributes a
// +1/2-index singularity and each delta a −1/2-index one, superimposed on a
// horizontal background flow; arches use a smooth parametric bump instead.
func (m *Master) OrientationAt(p geom.Point) float64 {
	if m.Class == Arch {
		g := math.Exp(-p.X*p.X/(2*m.archSigmaX*m.archSigmaX) -
			(p.Y-m.archY0)*(p.Y-m.archY0)/(2*m.archSigmaY*m.archSigmaY))
		slope := -m.archAmp * (p.X / m.archSigmaX) * g
		return wrapPi(math.Atan(slope))
	}
	theta := 0.0
	for _, c := range m.Cores {
		theta += 0.5 * math.Atan2(p.Y-c.Y, p.X-c.X)
	}
	for _, d := range m.Deltas {
		theta -= 0.5 * math.Atan2(p.Y-d.Y, p.X-d.X)
	}
	return wrapPi(theta)
}

// wrapPi maps an orientation into [0, π).
func wrapPi(t float64) float64 {
	t = math.Mod(t, math.Pi)
	if t < 0 {
		t += math.Pi
	}
	return t
}

// PeriodAt returns the local inter-ridge distance in mm. Ridges tighten
// slightly toward the core region, as in real prints.
func (m *Master) PeriodAt(p geom.Point) float64 {
	period := m.PeriodMM
	for _, c := range m.Cores {
		d := p.Dist(c)
		if d < 4 {
			period *= 1 - 0.12*(1-d/4)
		}
	}
	return period
}

// InPad reports whether p lies on the (elliptical) finger pad.
func (m *Master) InPad(p geom.Point) bool {
	rx := m.Pad.Width() / 2
	ry := m.Pad.Height() / 2
	c := m.Pad.Center()
	dx := (p.X - c.X) / rx
	dy := (p.Y - c.Y) / ry
	return dx*dx+dy*dy <= 1
}

// generateMinutiae fills the ground-truth minutiae set with dart-throwing
// placement: uniform candidates over the pad ellipse, rejected when closer
// than two ridge periods to an accepted minutia (real minutiae are
// separated by at least a ridge).
func (m *Master) generateMinutiae(src *rng.Source, mean float64) {
	target := src.Poisson(mean)
	if target < 8 {
		target = 8
	}
	minDist := 1.6 * m.PeriodMM
	rx := m.Pad.Width() / 2
	ry := m.Pad.Height() / 2
	var pts []geom.Point
	attempts := 0
	maxAttempts := target * 60
	for len(pts) < target && attempts < maxAttempts {
		attempts++
		p := geom.Point{
			X: (2*src.Float64() - 1) * rx,
			Y: (2*src.Float64() - 1) * ry,
		}
		if !m.InPad(p) {
			continue
		}
		ok := true
		for _, q := range pts {
			if p.Dist(q) < minDist {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	m.Minutiae = make([]GroundTruth, 0, len(pts))
	for _, p := range pts {
		angle := m.OrientationAt(p)
		if src.Bool(0.5) {
			angle += math.Pi
		}
		kind := minutiae.Ending
		if src.Bool(0.42) { // bifurcations are slightly rarer
			kind = minutiae.Bifurcation
		}
		m.Minutiae = append(m.Minutiae, GroundTruth{
			Pos:        p,
			Angle:      minutiae.NormalizeAngle(angle),
			Kind:       kind,
			Prominence: src.Beta(4, 1.6), // skewed toward robust features
		})
	}
}

// MinutiaeIn returns the ground-truth minutiae whose positions fall inside
// the window rectangle (mm).
func (m *Master) MinutiaeIn(window geom.Rect) []GroundTruth {
	var out []GroundTruth
	for _, gt := range m.Minutiae {
		if window.Contains(gt.Pos) {
			out = append(out, gt)
		}
	}
	return out
}

// Seed exposes the texture seed for image synthesis.
func (m *Master) Seed() uint64 { return m.seed }

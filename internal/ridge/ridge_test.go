package ridge

import (
	"math"
	"testing"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/rng"
)

func testMaster(t *testing.T, seed uint64, opts GenOptions) *Master {
	t.Helper()
	return Generate("test", rng.New(seed).Child("master"), opts)
}

func TestGenerateDeterministic(t *testing.T) {
	a := testMaster(t, 7, GenOptions{})
	b := testMaster(t, 7, GenOptions{})
	if a.Class != b.Class || a.PeriodMM != b.PeriodMM {
		t.Fatal("same seed produced different masters")
	}
	if len(a.Minutiae) != len(b.Minutiae) {
		t.Fatal("minutiae counts differ")
	}
	for i := range a.Minutiae {
		if a.Minutiae[i] != b.Minutiae[i] {
			t.Fatalf("minutia %d differs", i)
		}
	}
}

func TestGenerateDistinctSeeds(t *testing.T) {
	a := testMaster(t, 1, GenOptions{})
	b := testMaster(t, 2, GenOptions{})
	if a.PeriodMM == b.PeriodMM && len(a.Minutiae) == len(b.Minutiae) {
		same := true
		for i := range a.Minutiae {
			if i >= len(b.Minutiae) || a.Minutiae[i] != b.Minutiae[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical masters")
		}
	}
}

func TestClassFrequenciesRealized(t *testing.T) {
	counts := map[Class]int{}
	src := rng.New(99)
	const n = 3000
	for i := 0; i < n; i++ {
		m := Generate("x", src.Child(string(rune(i))), GenOptions{MeanMinutiae: 10})
		counts[m.Class]++
	}
	// Loops together ≈ 65%, whorls ≈ 28%, arches ≈ 7%.
	loops := float64(counts[LeftLoop]+counts[RightLoop]) / n
	whorls := float64(counts[Whorl]) / n
	arches := float64(counts[Arch]+counts[TentedArch]) / n
	if loops < 0.55 || loops > 0.75 {
		t.Fatalf("loop frequency %v", loops)
	}
	if whorls < 0.2 || whorls > 0.36 {
		t.Fatalf("whorl frequency %v", whorls)
	}
	if arches < 0.02 || arches > 0.13 {
		t.Fatalf("arch frequency %v", arches)
	}
}

func TestForceClass(t *testing.T) {
	for _, c := range []Class{Arch, TentedArch, LeftLoop, RightLoop, Whorl} {
		m := testMaster(t, 5, GenOptions{ForceClass: c, MeanMinutiae: 10})
		if m.Class != c {
			t.Fatalf("ForceClass %v ignored, got %v", c, m.Class)
		}
	}
}

func TestClassString(t *testing.T) {
	if Whorl.String() != "whorl" || Arch.String() != "arch" {
		t.Fatal("class names wrong")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should render")
	}
}

func TestSingularityCounts(t *testing.T) {
	cases := []struct {
		class         Class
		cores, deltas int
	}{
		{Arch, 0, 0},
		{TentedArch, 1, 1},
		{LeftLoop, 1, 1},
		{RightLoop, 1, 1},
		{Whorl, 2, 2},
	}
	for _, c := range cases {
		m := testMaster(t, 11, GenOptions{ForceClass: c.class, MeanMinutiae: 10})
		if len(m.Cores) != c.cores || len(m.Deltas) != c.deltas {
			t.Fatalf("%v: %d cores %d deltas", c.class, len(m.Cores), len(m.Deltas))
		}
	}
}

func TestOrientationRange(t *testing.T) {
	for _, class := range []Class{Arch, TentedArch, LeftLoop, RightLoop, Whorl} {
		m := testMaster(t, 13, GenOptions{ForceClass: class, MeanMinutiae: 10})
		for i := 0; i < 500; i++ {
			p := geom.Point{X: -10 + 20*float64(i%25)/24, Y: -12 + 24*float64(i/25)/19}
			th := m.OrientationAt(p)
			if th < 0 || th >= math.Pi {
				t.Fatalf("%v: orientation %v outside [0, π)", class, th)
			}
		}
	}
}

func TestOrientationFarFieldHorizontal(t *testing.T) {
	// Away from all singular points the flow should be near-horizontal
	// (loop: core and delta contributions cancel at long range).
	m := testMaster(t, 17, GenOptions{ForceClass: LeftLoop, MeanMinutiae: 10})
	p := geom.Point{X: 100, Y: 0}
	th := m.OrientationAt(p)
	d := math.Min(th, math.Pi-th)
	if d > 0.2 {
		t.Fatalf("far-field orientation %v not horizontal", th)
	}
}

func TestOrientationSmoothAwayFromSingularities(t *testing.T) {
	m := testMaster(t, 19, GenOptions{ForceClass: RightLoop, MeanMinutiae: 10})
	// Sample pairs of nearby points away from singular points and check
	// the orientation varies continuously.
	for i := 0; i < 200; i++ {
		p := geom.Point{X: -8 + float64(i%20), Y: -10 + float64(i/20)}
		tooClose := false
		for _, s := range append(append([]geom.Point{}, m.Cores...), m.Deltas...) {
			if p.Dist(s) < 2 {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		q := p.Add(geom.Point{X: 0.05, Y: 0.05})
		d := geom.OrientationDiff(m.OrientationAt(p), m.OrientationAt(q))
		if d > 0.3 {
			t.Fatalf("orientation jump %v at %v", d, p)
		}
	}
}

func TestPeriodTightensNearCore(t *testing.T) {
	m := testMaster(t, 23, GenOptions{ForceClass: Whorl, MeanMinutiae: 10})
	core := m.Cores[0]
	atCore := m.PeriodAt(core)
	far := m.PeriodAt(geom.Point{X: 50, Y: 50})
	if atCore >= far {
		t.Fatalf("period at core %v not below far-field %v", atCore, far)
	}
	if far != m.PeriodMM {
		t.Fatalf("far-field period %v != base %v", far, m.PeriodMM)
	}
}

func TestInPadEllipse(t *testing.T) {
	m := testMaster(t, 29, GenOptions{MeanMinutiae: 10})
	if !m.InPad(geom.Point{}) {
		t.Fatal("centre not in pad")
	}
	if m.InPad(geom.Point{X: m.Pad.Width(), Y: 0}) {
		t.Fatal("far point in pad")
	}
	// Ellipse corner: (rx, ry)·(1/√2 + ε) should be outside.
	rx, ry := m.Pad.Width()/2, m.Pad.Height()/2
	if m.InPad(geom.Point{X: rx * 0.8, Y: ry * 0.8}) {
		t.Fatal("ellipse corner misclassified")
	}
}

func TestMinutiaeInsidePadWithSpacing(t *testing.T) {
	m := testMaster(t, 31, GenOptions{})
	if len(m.Minutiae) < 20 {
		t.Fatalf("only %d minutiae generated", len(m.Minutiae))
	}
	minDist := 1.6 * m.PeriodMM
	for i, a := range m.Minutiae {
		if !m.InPad(a.Pos) {
			t.Fatalf("minutia %d outside pad: %v", i, a.Pos)
		}
		if a.Angle < 0 || a.Angle >= 2*math.Pi {
			t.Fatalf("minutia %d angle %v out of range", i, a.Angle)
		}
		if a.Kind != minutiae.Ending && a.Kind != minutiae.Bifurcation {
			t.Fatalf("minutia %d bad kind", i)
		}
		if a.Prominence <= 0 || a.Prominence > 1 {
			t.Fatalf("minutia %d prominence %v", i, a.Prominence)
		}
		for j := i + 1; j < len(m.Minutiae); j++ {
			if a.Pos.Dist(m.Minutiae[j].Pos) < minDist-1e-9 {
				t.Fatalf("minutiae %d and %d too close", i, j)
			}
		}
	}
}

func TestMinutiaAnglesFollowOrientationField(t *testing.T) {
	m := testMaster(t, 37, GenOptions{})
	for i, gt := range m.Minutiae {
		want := m.OrientationAt(gt.Pos)
		d := geom.OrientationDiff(gt.Angle, want)
		if d > 1e-9 {
			t.Fatalf("minutia %d angle %v disagrees with field %v", i, gt.Angle, want)
		}
	}
}

func TestMinutiaeIn(t *testing.T) {
	m := testMaster(t, 41, GenOptions{})
	window := geom.Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}
	sub := m.MinutiaeIn(window)
	if len(sub) == 0 {
		t.Fatal("central window has no minutiae")
	}
	if len(sub) >= len(m.Minutiae) {
		t.Fatal("window filter did not reduce the set")
	}
	for _, gt := range sub {
		if !window.Contains(gt.Pos) {
			t.Fatalf("minutia outside window: %v", gt.Pos)
		}
	}
}

func TestMeanMinutiaeOption(t *testing.T) {
	small := testMaster(t, 43, GenOptions{MeanMinutiae: 15})
	big := testMaster(t, 43, GenOptions{MeanMinutiae: 80})
	if len(small.Minutiae) >= len(big.Minutiae) {
		t.Fatalf("MeanMinutiae ignored: %d vs %d", len(small.Minutiae), len(big.Minutiae))
	}
}

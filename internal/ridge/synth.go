package ridge

import (
	"fmt"
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/imgproc"
	"fpinterop/internal/rng"
)

// SynthOptions configures ridge image synthesis.
type SynthOptions struct {
	// Iterations of Gabor growth (default 4). More iterations sharpen
	// ridges at proportional cost.
	Iterations int
	// OrientationBins quantizes the orientation field into this many Gabor
	// kernels (default 16).
	OrientationBins int
	// SeedDensity is the number of initial impulses per square ridge
	// period (default 0.35).
	SeedDensity float64
}

func (o SynthOptions) withDefaults() SynthOptions {
	if o.Iterations == 0 {
		o.Iterations = 4
	}
	if o.OrientationBins == 0 {
		o.OrientationBins = 16
	}
	if o.SeedDensity == 0 {
		o.SeedDensity = 0.35
	}
	return o
}

// Synthesize grows a ridge-pattern image of the master over the given
// window (mm, y-up) at the given resolution, using iterative oriented Gabor
// filtering seeded from the master's texture seed and ground-truth
// minutiae. The result uses fingerprint convention: ridges dark (0),
// valleys/background light (1).
//
// Note: like SFinGe, Gabor growth produces a ridge pattern whose *emergent*
// minutiae approximate — but do not exactly coincide with — the master's
// ground truth; the image path is validated statistically against the
// template path rather than minutia-by-minutia.
func Synthesize(m *Master, window geom.Rect, dpi int, opts SynthOptions) (*imgproc.Image, error) {
	opts = opts.withDefaults()
	if dpi <= 0 {
		return nil, fmt.Errorf("ridge: invalid dpi %d", dpi)
	}
	if window.Width() <= 0 || window.Height() <= 0 {
		return nil, fmt.Errorf("ridge: empty synthesis window %+v", window)
	}
	pxPerMM := float64(dpi) / 25.4
	w := int(math.Round(window.Width() * pxPerMM))
	h := int(math.Round(window.Height() * pxPerMM))
	if w < 8 || h < 8 {
		return nil, fmt.Errorf("ridge: window too small (%dx%d px)", w, h)
	}

	// Pixel (x, y) → master mm coordinates (y axis flips).
	toMM := func(x, y int) geom.Point {
		return geom.Point{
			X: window.MinX + (float64(x)+0.5)/pxPerMM,
			Y: window.MaxY - (float64(y)+0.5)/pxPerMM,
		}
	}

	// Pre-compute per-pixel orientation bin and in-pad mask.
	bins := opts.OrientationBins
	binOf := make([]int8, w*h)
	inPad := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := toMM(x, y)
			idx := y*w + x
			if !m.InPad(p) {
				binOf[idx] = -1
				continue
			}
			inPad[idx] = true
			theta := m.OrientationAt(p)
			// Orientation in master space is y-up; image space flips y,
			// which negates the angle.
			imgTheta := wrapPi(-theta)
			b := int(imgTheta / math.Pi * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			binOf[idx] = int8(b)
		}
	}

	// Gabor kernel bank tuned to the master's mean ridge frequency.
	periodPx := m.PeriodMM * pxPerMM
	freq := 1 / periodPx
	sigma := periodPx / 2.2
	kernels := make([][][]float64, bins)
	for b := 0; b < bins; b++ {
		theta := (float64(b) + 0.5) * math.Pi / float64(bins)
		kernels[b] = imgproc.GaborKernel(theta, freq, sigma, sigma)
	}

	// Seed image: impulses anchored in *master* (finger) coordinates so
	// that every capture of the same finger grows the same ridge pattern
	// regardless of placement. Seeds cover the whole pad; only those
	// falling inside the window contribute.
	src := rng.New(m.seed).Child("synth")
	img := imgproc.NewImage(w, h)
	padArea := m.Pad.Width() * m.Pad.Height()
	nSeeds := int(opts.SeedDensity * padArea / (m.PeriodMM * m.PeriodMM))
	place := func(p geom.Point) {
		if !window.Contains(p) {
			return
		}
		x := int((p.X - window.MinX) * pxPerMM)
		y := int((window.MaxY - p.Y) * pxPerMM)
		if x >= 0 && x < w && y >= 0 && y < h && inPad[y*w+x] {
			img.Set(x, y, 1)
		}
	}
	for i := 0; i < nSeeds; i++ {
		place(geom.Point{
			X: m.Pad.MinX + src.Float64()*m.Pad.Width(),
			Y: m.Pad.MinY + src.Float64()*m.Pad.Height(),
		})
	}
	for _, gt := range m.Minutiae {
		place(gt.Pos)
	}

	// Iterative growth: response → soft threshold.
	for it := 0; it < opts.Iterations; it++ {
		next := imgproc.NewImage(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				idx := y*w + x
				b := binOf[idx]
				if b < 0 {
					continue
				}
				r := imgproc.ApplyKernelAt(img, kernels[b], x, y)
				next.Pix[idx] = math.Tanh(4 * r)
			}
		}
		img = next
	}

	// Map signed ridge response to grayscale: positive response = ridge
	// (dark). Background (outside pad) is white.
	out := imgproc.NewImageFilled(w, h, 1)
	for idx, v := range img.Pix {
		if !inPad[idx] {
			continue
		}
		out.Pix[idx] = 0.5 - 0.5*v
	}
	return out.Clamp(), nil
}

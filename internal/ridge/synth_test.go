package ridge

import (
	"math"
	"testing"

	"fpinterop/internal/geom"
	"fpinterop/internal/imgproc"
	"fpinterop/internal/rng"
)

// smallWindow keeps synthesis tests fast: 8×8 mm at 250 dpi ≈ 79×79 px.
var smallWindow = geom.Rect{MinX: -4, MinY: -4, MaxX: 4, MaxY: 4}

func TestSynthesizeProducesRidgePattern(t *testing.T) {
	m := Generate("synth", rng.New(3).Child("m"), GenOptions{ForceClass: RightLoop})
	img, err := Synthesize(m, smallWindow, 250, SynthOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if img.W < 70 || img.H < 70 {
		t.Fatalf("unexpected size %dx%d", img.W, img.H)
	}
	// The pattern must be strongly bimodal: plenty of dark ridge pixels
	// and light valley pixels.
	dark, light := 0, 0
	for _, v := range img.Pix {
		if v < 0.25 {
			dark++
		} else if v > 0.75 {
			light++
		}
	}
	total := len(img.Pix)
	if dark < total/10 {
		t.Fatalf("too few ridge pixels: %d/%d", dark, total)
	}
	if light < total/10 {
		t.Fatalf("too few valley pixels: %d/%d", light, total)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	m := Generate("synth", rng.New(5).Child("m"), GenOptions{ForceClass: Whorl})
	a, err := Synthesize(m, smallWindow, 250, SynthOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(m, smallWindow, 250, SynthOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestSynthesizeOrientationMatchesModel(t *testing.T) {
	// Grow an image and verify that the estimated orientation field of the
	// rendered ridges agrees with the master's analytic field.
	m := Generate("synth", rng.New(7).Child("m"), GenOptions{ForceClass: Arch})
	img, err := Synthesize(m, smallWindow, 250, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	of := imgproc.EstimateOrientation(img, 16)
	of.Smooth(1)
	pxPerMM := 250.0 / 25.4
	checked, agree := 0, 0
	for by := 1; by < of.BH-1; by++ {
		for bx := 1; bx < of.BW-1; bx++ {
			cx := float64(bx*16 + 8)
			cy := float64(by*16 + 8)
			p := geom.Point{
				X: smallWindow.MinX + cx/pxPerMM,
				Y: smallWindow.MaxY - cy/pxPerMM,
			}
			if !m.InPad(p) || of.Coherence[by][bx] < 0.3 {
				continue
			}
			// Master orientation in image space (y flip negates angle).
			want := math.Mod(-m.OrientationAt(p)+math.Pi, math.Pi)
			got := of.Theta[by][bx]
			if geom.OrientationDiff(got, want) < 0.35 {
				agree++
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("too few coherent blocks to check: %d", checked)
	}
	if frac := float64(agree) / float64(checked); frac < 0.7 {
		t.Fatalf("only %.0f%% of blocks agree with the analytic field", frac*100)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	m := Generate("synth", rng.New(9).Child("m"), GenOptions{})
	if _, err := Synthesize(m, smallWindow, 0, SynthOptions{}); err == nil {
		t.Fatal("expected dpi error")
	}
	if _, err := Synthesize(m, geom.Rect{}, 250, SynthOptions{}); err == nil {
		t.Fatal("expected empty-window error")
	}
	tiny := geom.Rect{MinX: 0, MinY: 0, MaxX: 0.1, MaxY: 0.1}
	if _, err := Synthesize(m, tiny, 250, SynthOptions{}); err == nil {
		t.Fatal("expected too-small error")
	}
}

func TestSynthesizeOutsidePadIsWhite(t *testing.T) {
	m := Generate("synth", rng.New(11).Child("m"), GenOptions{})
	// Window hanging far off the pad's right edge.
	window := geom.Rect{MinX: 12, MinY: -4, MaxX: 20, MaxY: 4}
	img, err := Synthesize(m, window, 250, SynthOptions{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range img.Pix {
		if v != 1 {
			t.Fatalf("off-pad pixel %v, want white", v)
		}
	}
}

// Package rng provides a deterministic, splittable pseudo-random number
// source used by every randomized component of the study.
//
// The entire synthetic data collection must be a pure function of a single
// study seed so that experiments are exactly reproducible. To achieve that
// without threading shared mutable state through concurrent generators, rng
// exposes keyed *splitting*: a Source can derive an independent child Source
// from a string path such as "subject/42/device/D1/sample/0". Children with
// distinct paths are statistically independent; identical paths yield
// identical streams.
//
// The core generator is SplitMix64, which passes BigCrush at 64-bit output
// and is trivially seedable from a hash; keyed derivation uses FNV-1a over
// the path mixed into the parent seed.
package rng

import (
	"math"
)

// Source is a deterministic random source. It is NOT safe for concurrent
// use; derive one Source per goroutine via Child or Split.
type Source struct {
	// seed is the immutable identity of this source; Child and Split derive
	// from it, so deriving children never depends on how much randomness has
	// been consumed from the parent.
	seed  uint64
	state uint64
}

// New returns a Source seeded with seed. Any seed value, including zero,
// is valid.
func New(seed uint64) *Source {
	// Pre-mix so that small consecutive seeds produce unrelated streams.
	s := splitmix(seed + 0x9e3779b97f4a7c15)
	return &Source{seed: s, state: s}
}

// fnv1a hashes s with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix advances a SplitMix64 state by one step and returns the output.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Child derives an independent Source keyed by path. The derivation does
// not consume randomness from the parent: calling Child never perturbs the
// parent stream, and the same (parent seed, path) pair always produces the
// same child.
func (s *Source) Child(path string) *Source {
	d := splitmix(s.seed ^ fnv1a(path))
	return &Source{seed: d, state: d}
}

// Split returns n independent children keyed by index.
func (s *Source) Split(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		d := splitmix(s.seed ^ (uint64(i)+1)*0xd1342543de82ef95)
		out[i] = &Source{seed: d, state: d}
	}
	return out
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0, mirroring
// math/rand's contract for programmer errors.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	return a1*b1 + t>>32 + w1>>32, a * b
}

// Norm returns a standard normal variate (Box–Muller, polar form avoided
// for simplicity; the trig form is deterministic and branch-free).
func (s *Source) Norm() float64 {
	// Guard against log(0).
	u := 1 - s.Float64()
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// NormMS returns a normal variate with the given mean and standard
// deviation.
func (s *Source) NormMS(mean, sd float64) float64 {
	return mean + sd*s.Norm()
}

// TruncNorm returns a normal variate clamped to [lo, hi] by rejection, with
// a clamp fallback after 64 rejections so the call always terminates.
func (s *Source) TruncNorm(mean, sd, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := s.NormMS(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	x := s.NormMS(mean, sd)
	return math.Min(hi, math.Max(lo, x))
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (s *Source) Exp(rate float64) float64 {
	return -math.Log(1-s.Float64()) / rate
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// product method for small means and a normal approximation above 30.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(s.NormMS(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Beta returns a Beta(a,b) variate via Jöhnk's algorithm for small shapes
// and the ratio of gammas otherwise.
func (s *Source) Beta(a, b float64) float64 {
	x := s.Gamma(a)
	y := s.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma returns a Gamma(shape, 1) variate using Marsaglia–Tsang.
func (s *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Perm returns a uniformly random permutation of [0,n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements addressed by swap in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random index weighted by weights. Weights must
// be non-negative; if they sum to zero the first index is returned.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

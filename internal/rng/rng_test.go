package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/100 times", same)
	}
}

func TestChildIndependentOfParentConsumption(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // consuming from the parent must not change children
	c1 := p1.Child("subject/1")
	c2 := p2.Child("subject/1")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("child stream depends on parent consumption")
		}
	}
}

func TestChildPathsDistinct(t *testing.T) {
	p := New(7)
	a := p.Child("a")
	b := p.Child("b")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("distinct paths produced identical streams")
	}
}

func TestSplitDistinct(t *testing.T) {
	kids := New(3).Split(8)
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("split children collided")
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn bucket %d badly skewed: %d", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestTruncNormRespectsBounds(t *testing.T) {
	s := New(17)
	for i := 0; i < 5000; i++ {
		x := s.TruncNorm(0, 10, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("TruncNorm escaped bounds: %v", x)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 45} {
		s := New(uint64(mean * 100))
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := New(1).Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	s := New(23)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of [0,1]: %v", x)
		}
		sum += x
	}
	mean := sum / n
	want := 2.0 / 7.0
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean %v, want ≈ %v", mean, want)
	}
}

func TestGammaMean(t *testing.T) {
	s := New(29)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Gamma(3.5)
	}
	mean := sum / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("Gamma(3.5) mean %v", mean)
	}
}

func TestGammaSmallShape(t *testing.T) {
	s := New(31)
	for i := 0; i < 1000; i++ {
		if x := s.Gamma(0.3); x < 0 {
			t.Fatalf("Gamma(0.3) negative: %v", x)
		}
	}
	if x := s.Gamma(0); x != 0 {
		t.Fatalf("Gamma(0) = %v, want 0", x)
	}
}

func TestExpMean(t *testing.T) {
	s := New(37)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %v, want 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: sum %d != %d", got, sum)
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(43)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Pick([]float64{1, 2, 6})]++
	}
	// Expected proportions 1/9, 2/9, 6/9.
	if c := float64(counts[2]) / n; math.Abs(c-6.0/9.0) > 0.01 {
		t.Fatalf("Pick heavy bucket proportion %v", c)
	}
	if c := float64(counts[0]) / n; math.Abs(c-1.0/9.0) > 0.01 {
		t.Fatalf("Pick light bucket proportion %v", c)
	}
}

func TestPickDegenerate(t *testing.T) {
	s := New(47)
	if got := s.Pick([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Pick zero weights = %d, want 0", got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(53)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against the 128-bit product computed via math/bits-free
		// split multiplication identity on 32-bit halves.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		t0 := a0 * b0
		t1 := a1*b0 + t0>>32
		t2 := t1&0xffffffff + a0*b1
		wantHi := a1*b1 + t1>>32 + t2>>32
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}

package sensor

import (
	"fmt"
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/ridge"
	"fpinterop/internal/rng"
)

// Impression is one capture event: a minutiae template plus the capture
// metadata the study needs.
type Impression struct {
	// DeviceID is the capturing device ("D0".."D4").
	DeviceID string
	// SubjectID identifies the participant.
	SubjectID int
	// Sample is the sample index on this device (0 or 1; ink has only 0).
	Sample int
	// Window is the region of the master pad captured, in mm (pre-warp).
	Window geom.Rect
	// Fidelity is the latent capture fidelity in [0, 1] that drove the
	// degradation model (ground truth, not observable by a real system).
	Fidelity float64
	// Quality is the NFIQ class measured for this impression.
	Quality nfiq.Class
	// Template is the extracted minutiae template in window pixel
	// coordinates at the device DPI.
	Template *minutiae.Template
}

// CaptureOptions tunes a capture event.
type CaptureOptions struct {
	// SampleIndex is which sample this is (habituation improves later
	// samples slightly).
	SampleIndex int
	// HabituationGain is the fidelity bonus per prior sample (default
	// 0.015; the paper lists habituation as a future-work axis).
	HabituationGain float64
	// QualityBoost raises the latent fidelity before degradation —
	// used by recapture policies. Usually zero.
	QualityBoost float64
}

func (o CaptureOptions) withDefaults() CaptureOptions {
	if o.HabituationGain == 0 {
		o.HabituationGain = 0.015
	}
	return o
}

// Capture simulates one template-level acquisition of the master print on
// this device: placement, fidelity realization, systematic + elastic
// distortion, minutiae dropout/spurious generation, measurement noise, and
// quality assessment. All randomness comes from src.
func (p *Profile) Capture(master *ridge.Master, traits population.Traits, src *rng.Source, opts CaptureOptions) (*Impression, error) {
	if master == nil {
		return nil, fmt.Errorf("sensor: nil master fingerprint")
	}
	opts = opts.withDefaults()

	// --- Placement: window centre jitters around the pad centre; poor
	// cooperation and handheld devices jitter more.
	jitterSD := p.PlacementSD * (1.6 - 0.75*traits.Cooperation)
	center := geom.Point{
		X: src.NormMS(0, jitterSD),
		Y: src.NormMS(0, jitterSD),
	}
	window := geom.CenteredRect(center, p.ContactW, p.ContactH)
	rotation := src.NormMS(0, p.RotationSD*(1.5-0.6*traits.Cooperation))

	// --- Latent capture fidelity: subject physiology × device quality ×
	// per-capture condition noise + habituation.
	skin := 0.45*traits.SkinMoisture + 0.30*traits.RidgeDefinition + 0.25*traits.SkinElasticity
	phi := 0.15 + 0.62*skin + 0.28*(p.BaseFidelity-0.7)/0.3*0.5
	phi += float64(opts.SampleIndex) * opts.HabituationGain
	phi += opts.QualityBoost
	phi += src.NormMS(0, 0.07)
	if p.Ink {
		phi -= 0.10 // ink smudge/over-rolling penalty beyond BaseFidelity
	}
	phi = clamp01(phi)

	// --- Geometric chain: master mm → placement rotation → device
	// systematic distortion → elastic pressure distortion.
	pressAmp := (1 - traits.SkinElasticity) * 0.22 // mm
	pressPhaseX := src.Float64() * 2 * math.Pi
	pressPhaseY := src.Float64() * 2 * math.Pi
	elastic := func(pt geom.Point) geom.Point {
		return geom.Point{
			X: pt.X + pressAmp*math.Sin(2*math.Pi*pt.Y/14+pressPhaseX),
			Y: pt.Y + pressAmp*math.Sin(2*math.Pi*pt.X/16+pressPhaseY),
		}
	}
	rot := geom.Rigid{Theta: rotation, S: 1}

	// --- Measurement noise scales inversely with fidelity.
	posNoise := 0.05 + (1-phi)*0.28 // mm
	angNoise := 0.03 + (1-phi)*0.30 // rad

	// --- Minutiae survival: high-prominence features survive poor
	// captures; low-prominence ones vanish first.
	w, h := p.TemplateSize()
	pxPerMM := float64(p.DPI) / 25.4
	tpl := &minutiae.Template{Width: w, Height: h, DPI: p.DPI}
	for _, gt := range master.Minutiae {
		// Placement rotation about the window centre.
		pt := rot.Apply(gt.Pos.Sub(center)).Add(center)
		if !window.Contains(pt) {
			continue
		}
		// Survival probability: base detection rate rises with fidelity;
		// prominence shields features.
		pDetect := 0.55 + 0.44*phi
		pDetect *= 0.55 + 0.45*gt.Prominence
		if !src.Bool(clamp01(pDetect + 0.15)) {
			continue
		}
		warped := elastic(p.Distort(pt))
		warped = geom.Point{
			X: warped.X + src.NormMS(0, posNoise),
			Y: warped.Y + src.NormMS(0, posNoise),
		}
		angle := gt.Angle + rotation + src.NormMS(0, angNoise)
		// Type misclassification happens on faint features.
		kind := gt.Kind
		if src.Bool(0.04 + 0.18*(1-phi)) {
			if kind == minutiae.Ending {
				kind = minutiae.Bifurcation
			} else {
				kind = minutiae.Ending
			}
		}
		x := (warped.X - window.MinX) * pxPerMM
		y := (window.MaxY - warped.Y) * pxPerMM // y flips into image space
		if x < 0 || x >= float64(w) || y < 0 || y >= float64(h) {
			continue
		}
		tpl.Minutiae = append(tpl.Minutiae, minutiae.Minutia{
			X: x, Y: y,
			Angle:   minutiae.NormalizeAngle(-(angle)), // image y-flip negates angles
			Kind:    kind,
			Quality: uint8(30 + 65*phi*gt.Prominence),
		})
	}

	// --- Spurious minutiae: scratches, dryness breaks, ink blobs.
	lambda := 1.0 + 9.0*(1-phi)*(1-phi)
	if p.Ink {
		lambda *= 1.6
	}
	nSpurious := src.Poisson(lambda)
	for i := 0; i < nSpurious; i++ {
		kind := minutiae.Ending
		if src.Bool(0.5) {
			kind = minutiae.Bifurcation
		}
		tpl.Minutiae = append(tpl.Minutiae, minutiae.Minutia{
			X:       src.Float64() * float64(w),
			Y:       src.Float64() * float64(h),
			Angle:   src.Float64() * 2 * math.Pi,
			Kind:    kind,
			Quality: uint8(20 + src.Intn(30)),
		})
	}

	// --- Quality measurement: NFIQ responds to the same latent fidelity
	// with measurement noise.
	q := nfiq.FromFidelity(clamp01(phi + src.NormMS(0, 0.05)))

	imp := &Impression{
		DeviceID:  p.ID,
		Sample:    opts.SampleIndex,
		Window:    window,
		Fidelity:  phi,
		Quality:   q,
		Template:  tpl,
		SubjectID: -1, // filled by the caller when known
	}
	if err := tpl.Validate(); err != nil {
		return nil, fmt.Errorf("sensor: capture produced invalid template: %w", err)
	}
	return imp, nil
}

// CaptureSubject captures one sample of a study subject on this device,
// wiring subject traits, keyed randomness and metadata.
func (p *Profile) CaptureSubject(s *population.Subject, sample int, opts CaptureOptions) (*Impression, error) {
	opts.SampleIndex = sample
	src := s.CaptureSource(p.ID, sample)
	imp, err := p.Capture(s.Master(), s.Traits, src, opts)
	if err != nil {
		return nil, fmt.Errorf("subject %d on %s sample %d: %w", s.ID, p.ID, sample, err)
	}
	imp.SubjectID = s.ID
	return imp, nil
}

// CaptureFinger captures an arbitrary finger of a subject (the paper's
// study uses the right index; multi-finger fusion — future-work bullet 5
// — needs the rest). Randomness is keyed by (device, finger, sample) so
// fingers have independent capture conditions.
func (p *Profile) CaptureFinger(s *population.Subject, finger population.Finger, sample int, opts CaptureOptions) (*Impression, error) {
	master, err := s.Finger(finger)
	if err != nil {
		return nil, fmt.Errorf("sensor: capture finger: %w", err)
	}
	opts.SampleIndex = sample
	src := s.CaptureSource(p.ID+"/"+finger.String(), sample)
	imp, err := p.Capture(master, s.Traits, src, opts)
	if err != nil {
		return nil, fmt.Errorf("subject %d finger %s on %s sample %d: %w",
			s.ID, finger, p.ID, sample, err)
	}
	imp.SubjectID = s.ID
	return imp, nil
}

// Rescan simulates digitizing the same physical impression again — the
// ten-print-card scenario where only one ink imprint exists but the card
// can be scanned repeatedly. The ridge geometry on paper is fixed, so the
// result is the original template perturbed only by fresh scanner noise:
// tiny positional/angular jitter and occasional re-detection differences.
// This is why the paper's Table 5 reports its *lowest* FNMR on the D4–D4
// diagonal despite ink being the worst-quality modality.
func (p *Profile) Rescan(imp *Impression, src *rng.Source) (*Impression, error) {
	if imp == nil || imp.Template == nil {
		return nil, fmt.Errorf("sensor: rescan of nil impression")
	}
	out := &Impression{
		DeviceID:  imp.DeviceID,
		SubjectID: imp.SubjectID,
		Sample:    imp.Sample + 1,
		Window:    imp.Window,
		Fidelity:  imp.Fidelity,
		Quality:   imp.Quality,
		Template:  imp.Template.Clone(),
	}
	w, h := float64(out.Template.Width), float64(out.Template.Height)
	kept := out.Template.Minutiae[:0]
	for _, m := range out.Template.Minutiae {
		// Re-detection: a faint feature occasionally flips in or out.
		if src.Bool(0.02) {
			continue
		}
		m.X += src.NormMS(0, 0.6)
		m.Y += src.NormMS(0, 0.6)
		m.Angle = minutiae.NormalizeAngle(m.Angle + src.NormMS(0, 0.02))
		if m.X < 0 || m.X >= w || m.Y < 0 || m.Y >= h {
			continue
		}
		kept = append(kept, m)
	}
	out.Template.Minutiae = kept
	// Scanner noise barely moves measured quality.
	q := int(out.Quality)
	if src.Bool(0.1) {
		q += src.Intn(3) - 1
	}
	if q < 1 {
		q = 1
	} else if q > 5 {
		q = 5
	}
	out.Quality = nfiq.Class(q)
	if err := out.Template.Validate(); err != nil {
		return nil, fmt.Errorf("sensor: rescan produced invalid template: %w", err)
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

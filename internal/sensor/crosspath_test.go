package sensor

// Cross-path validation: the large-scale study runs on the template-level
// capture model, while tools and examples use the full image pipeline.
// These tests tie the two together statistically: the image path must
// preserve the same orderings (same-device genuine > cross-device genuine
// > impostor) and its measured NFIQ must track the template path's
// fidelity-derived quality.

import (
	"testing"

	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
)

func TestImagePathPreservesScoreOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("image path is slow")
	}
	cohort := population.NewCohort(rng.New(515), population.CohortOptions{Size: 3})
	d0, _ := ProfileByID("D0")
	d1, _ := ProfileByID("D1")
	matcher := &match.HoughMatcher{}

	capture := func(subj *population.Subject, dev *Profile, sample int) *minutiae.Template {
		t.Helper()
		img, _, err := dev.CaptureImage(subj.Master(), subj.Traits,
			subj.CaptureSource(dev.ID+"/img", sample),
			CaptureOptions{SampleIndex: sample})
		if err != nil {
			t.Fatal(err)
		}
		tpl, err := minutiae.ExtractFromImage(img, dev.DPI, minutiae.ExtractOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return tpl
	}

	alice := cohort.Subjects[0]
	bob := cohort.Subjects[1]

	galleryD0 := capture(alice, d0, 0)
	probeD0 := capture(alice, d0, 1)
	probeD1 := capture(alice, d1, 1)
	impostorD0 := capture(bob, d0, 0)

	score := func(g, p *minutiae.Template) float64 {
		res, err := matcher.Match(g, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Score
	}
	same := score(galleryD0, probeD0)
	cross := score(galleryD0, probeD1)
	imp := score(galleryD0, impostorD0)

	if same <= imp {
		t.Fatalf("image path: same-device genuine %v not above impostor %v", same, imp)
	}
	if cross <= imp {
		t.Fatalf("image path: cross-device genuine %v not above impostor %v", cross, imp)
	}
	if same <= cross {
		t.Fatalf("image path: same-device %v not above cross-device %v", same, cross)
	}
}

func TestImagePathQualityTracksTemplatePath(t *testing.T) {
	if testing.Short() {
		t.Skip("image path is slow")
	}
	cohort := population.NewCohort(rng.New(717), population.CohortOptions{Size: 2})
	subj := cohort.Subjects[0]
	d0, _ := ProfileByID("D0")
	d4, _ := ProfileByID("D4")

	assess := func(dev *Profile) (img nfiq.Class, tpl nfiq.Class) {
		t.Helper()
		im, _, err := dev.CaptureImage(subj.Master(), subj.Traits,
			subj.CaptureSource(dev.ID+"/q", 0), CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		imp, err := dev.CaptureSubject(subj, 0, CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return nfiq.Assess(im), imp.Quality
	}

	imgQ0, tplQ0 := assess(d0)
	imgQ4, tplQ4 := assess(d4)

	// Ink must not measure better than clean optical on either path.
	if imgQ4 < imgQ0 {
		t.Fatalf("image path: ink quality %v better than optical %v", imgQ4, imgQ0)
	}
	if tplQ4 < tplQ0 {
		t.Fatalf("template path: ink quality %v better than optical %v", tplQ4, tplQ0)
	}
	// The two paths agree to within two classes on the same capture
	// conditions (they share the latent fidelity model).
	diff := int(imgQ0) - int(tplQ0)
	if diff < -2 || diff > 2 {
		t.Fatalf("paths disagree on D0 quality: image %v vs template %v", imgQ0, tplQ0)
	}
}

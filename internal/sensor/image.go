package sensor

import (
	"fmt"
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/imgproc"
	"fpinterop/internal/population"
	"fpinterop/internal/ridge"
	"fpinterop/internal/rng"
)

// CaptureImage runs the full image-level acquisition path: synthesize the
// ridge pattern over the placement window, then push it through the
// device's imaging chain (geometric distortion, contrast transfer, dryness
// breaks, sensor noise, ink artifacts). It returns the captured image and
// the placement window used.
//
// This path is orders of magnitude slower than Capture and is used by the
// examples, command-line tools, and the calibration tests that tie the two
// paths together.
func (p *Profile) CaptureImage(master *ridge.Master, traits population.Traits, src *rng.Source, opts CaptureOptions) (*imgproc.Image, geom.Rect, error) {
	if master == nil {
		return nil, geom.Rect{}, fmt.Errorf("sensor: nil master fingerprint")
	}
	opts = opts.withDefaults()

	jitterSD := p.PlacementSD * (1.6 - 0.75*traits.Cooperation)
	center := geom.Point{X: src.NormMS(0, jitterSD), Y: src.NormMS(0, jitterSD)}
	window := geom.CenteredRect(center, p.ContactW, p.ContactH)

	base, err := ridge.Synthesize(master, window, p.DPI, ridge.SynthOptions{})
	if err != nil {
		return nil, geom.Rect{}, fmt.Errorf("sensor: synthesize for %s: %w", p.ID, err)
	}

	// Geometric distortion: resample through the inverse displacement
	// (approximated by negating the forward displacement, valid for the
	// small amplitudes involved).
	pxPerMM := float64(p.DPI) / 25.4
	distorted := imgproc.NewImage(base.W, base.H)
	for y := 0; y < base.H; y++ {
		for x := 0; x < base.W; x++ {
			mm := geom.Point{
				X: window.MinX + (float64(x)+0.5)/pxPerMM,
				Y: window.MaxY - (float64(y)+0.5)/pxPerMM,
			}
			d := p.Distort(mm)
			// Inverse warp: sample where the distortion came from.
			inv := geom.Point{X: 2*mm.X - d.X, Y: 2*mm.Y - d.Y}
			sx := (inv.X - window.MinX) * pxPerMM
			sy := (window.MaxY - inv.Y) * pxPerMM
			distorted.Pix[y*base.W+x] = base.Bilinear(sx-0.5, sy-0.5)
		}
	}

	// Latent fidelity for the imaging chain (same model as Capture).
	skin := 0.45*traits.SkinMoisture + 0.30*traits.RidgeDefinition + 0.25*traits.SkinElasticity
	phi := 0.15 + 0.62*skin + 0.28*(p.BaseFidelity-0.7)/0.3*0.5
	phi += float64(opts.SampleIndex) * opts.HabituationGain
	if p.Ink {
		phi -= 0.10
	}
	phi = clamp01(phi + src.NormMS(0, 0.07))

	out := distorted
	// Dryness breaks: a smooth random field gates ridge contrast; dry skin
	// (low moisture, low fidelity) breaks ridges into fragments.
	breakStrength := (1 - phi) * (1.3 - traits.SkinMoisture)
	if breakStrength > 0.05 {
		fieldSeed := src.Uint64()
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				n := smoothNoise(fieldSeed, float64(x)/17, float64(y)/17)
				if n < breakStrength*0.8 {
					idx := y*out.W + x
					// Fade ridges toward background.
					out.Pix[idx] = out.Pix[idx]*0.35 + 0.65
				}
			}
		}
	}
	// Contrast transfer.
	for i, v := range out.Pix {
		out.Pix[i] = math.Pow(clamp01(v), p.ContrastGamma)
	}
	// Ink artifacts: blotting (dark blobs) and fading.
	if p.Ink {
		nBlots := src.Poisson(6)
		for i := 0; i < nBlots; i++ {
			bx, by := src.Intn(out.W), src.Intn(out.H)
			r := 2 + src.Intn(6)
			dark := src.Bool(0.6)
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if dx*dx+dy*dy > r*r {
						continue
					}
					if dark {
						out.Set(bx+dx, by+dy, out.At(bx+dx, by+dy)*0.2)
					} else {
						out.Set(bx+dx, by+dy, 1)
					}
				}
			}
		}
	}
	// Sensor noise.
	for i := range out.Pix {
		out.Pix[i] += src.NormMS(0, p.NoiseSD)
	}
	out.Clamp()
	// Scanned ink goes through the despeckling every AFIS scan pipeline
	// applies (paper grain and dust produce salt-and-pepper noise).
	if p.Ink {
		out = imgproc.Median3(out)
	}
	return out, window, nil
}

// smoothNoise is a cheap value-noise function in [0, 1] with bilinear
// interpolation between hashed lattice values.
func smoothNoise(seed uint64, x, y float64) float64 {
	xi, yi := math.Floor(x), math.Floor(y)
	fx, fy := x-xi, y-yi
	h := func(ix, iy int64) float64 {
		v := seed ^ uint64(ix)*0x9e3779b97f4a7c15 ^ uint64(iy)*0xc2b2ae3d27d4eb4f
		v ^= v >> 29
		v *= 0xbf58476d1ce4e5b9
		v ^= v >> 32
		return float64(v%65536) / 65536
	}
	ix, iy := int64(xi), int64(yi)
	v00 := h(ix, iy)
	v10 := h(ix+1, iy)
	v01 := h(ix, iy+1)
	v11 := h(ix+1, iy+1)
	// Smoothstep the fractions for C1 continuity.
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	return v00*(1-sx)*(1-sy) + v10*sx*(1-sy) + v01*(1-sx)*sy + v11*sx*sy
}

// Package sensor models the five capture devices of the study (Table 1):
// four 500-dpi optical live-scan sensors (D0–D3) and scanned ink ten-print
// cards (D4). A Profile carries both the paper's published device metadata
// and the acquisition model parameters that generate device-characteristic
// differences: effective contact area, systematic geometric distortion,
// contrast/noise transfer, and placement repeatability.
//
// Interoperability effects are *emergent*: every device applies its own
// fixed smooth distortion field to the finger geometry, so two impressions
// from the same device share the warp (which therefore cancels in
// matching), while impressions from different devices disagree by the
// relative warp — exactly the mechanism Ross & Nadgir identified and the
// paper measures at scale.
package sensor

import (
	"math"

	"fpinterop/internal/geom"
)

// Profile describes one capture device.
type Profile struct {
	// ID is the paper's device label: "D0".."D4".
	ID string
	// Model is the commercial device name from Table 1.
	Model string
	// Technology is the sensing family.
	Technology string
	// DPI is the nominal resolution (500 for every device in the study).
	DPI int
	// ImageW, ImageH are the published image dimensions in pixels
	// (Table 1 metadata, used for reporting).
	ImageW, ImageH int
	// PlatenW, PlatenH are the published capture areas in mm (Table 1).
	PlatenW, PlatenH float64

	// ContactW, ContactH are the effective finger contact window in mm —
	// the part of the pad actually imaged. Large platens are limited by
	// the finger itself; the handheld Seek II (D3) images less; rolled ink
	// prints image more.
	ContactW, ContactH float64
	// BaseFidelity is the device's contribution to capture quality in
	// [0, 1].
	BaseFidelity float64
	// NoiseSD is the grayscale noise level of the imaging chain.
	NoiseSD float64
	// ContrastGamma shapes the grayscale transfer (1 = linear).
	ContrastGamma float64
	// DistortAmp is the amplitude (mm) of the device's systematic smooth
	// distortion field.
	DistortAmp float64
	// ScaleErrX, ScaleErrY are small anisotropic plate scale errors
	// (fraction; 0 = perfectly calibrated).
	ScaleErrX, ScaleErrY float64
	// PlacementSD is the finger placement repeatability in mm.
	PlacementSD float64
	// RotationSD is the placement rotation repeatability in radians.
	RotationSD float64
	// Ink marks the ten-print-card path (rolled impressions, one sample).
	Ink bool

	// distortSeed parameterizes the systematic distortion field.
	distortSeed uint64
}

// profiles are the five study devices. Published metadata follows the
// paper's Table 1; acquisition-model parameters are chosen so the study's
// qualitative results (Tables 4–6) emerge: D0 is the best-behaved sensor,
// D1 slightly noisier, D2 has a larger usable image, D3 a clearly smaller
// contact area, and D4 (ink) is the outlier in both geometry and quality.
var profiles = []*Profile{
	{
		ID: "D0", Model: "Cross Match Guardian R2", Technology: "optical live-scan",
		DPI: 500, ImageW: 800, ImageH: 750, PlatenW: 81, PlatenH: 76,
		ContactW: 16.5, ContactH: 20.5,
		BaseFidelity: 0.97, NoiseSD: 0.05, ContrastGamma: 1.0,
		DistortAmp: 0.32, ScaleErrX: 0.002, ScaleErrY: -0.003,
		PlacementSD: 1.1, RotationSD: 0.05,
		distortSeed: 0xd0,
	},
	{
		ID: "D1", Model: "i3 digID Mini", Technology: "optical live-scan",
		DPI: 500, ImageW: 752, ImageH: 750, PlatenW: 81, PlatenH: 76,
		ContactW: 15.5, ContactH: 19.5,
		BaseFidelity: 0.90, NoiseSD: 0.07, ContrastGamma: 1.15,
		DistortAmp: 0.55, ScaleErrX: -0.004, ScaleErrY: 0.005,
		PlacementSD: 1.3, RotationSD: 0.06,
		distortSeed: 0xd1,
	},
	{
		ID: "D2", Model: "L1 Identity Solutions TouchPrint 5300", Technology: "optical live-scan",
		DPI: 500, ImageW: 800, ImageH: 750, PlatenW: 81, PlatenH: 76,
		ContactW: 17.0, ContactH: 21.0,
		BaseFidelity: 0.94, NoiseSD: 0.06, ContrastGamma: 0.95,
		DistortAmp: 0.45, ScaleErrX: 0.005, ScaleErrY: 0.002,
		PlacementSD: 1.2, RotationSD: 0.05,
		distortSeed: 0xd2,
	},
	{
		ID: "D3", Model: "Cross Match Seek II", Technology: "optical live-scan (handheld)",
		DPI: 500, ImageW: 800, ImageH: 750, PlatenW: 40.6, PlatenH: 38.1,
		ContactW: 12.5, ContactH: 15.5,
		BaseFidelity: 0.93, NoiseSD: 0.065, ContrastGamma: 1.05,
		DistortAmp: 0.50, ScaleErrX: -0.002, ScaleErrY: -0.004,
		PlacementSD: 1.6, RotationSD: 0.08,
		distortSeed: 0xd3,
	},
	{
		ID: "D4", Model: "Ink ten-print card (flat-bed scan)", Technology: "ink and paper",
		DPI: 500, ImageW: 800, ImageH: 750, PlatenW: 81, PlatenH: 76,
		ContactW: 19.0, ContactH: 23.0, // rolled impressions cover more pad
		BaseFidelity: 0.72, NoiseSD: 0.13, ContrastGamma: 1.4,
		DistortAmp: 0.85, ScaleErrX: 0.008, ScaleErrY: -0.007,
		PlacementSD: 1.8, RotationSD: 0.10,
		Ink:         true,
		distortSeed: 0xd4,
	},
}

// Profiles returns the five study devices D0–D4 in order. The slice is
// freshly allocated; the profiles themselves are shared and must not be
// mutated.
func Profiles() []*Profile {
	out := make([]*Profile, len(profiles))
	copy(out, profiles)
	return out
}

// LiveScanProfiles returns only the four live-scan devices D0–D3.
func LiveScanProfiles() []*Profile {
	out := make([]*Profile, 0, 4)
	for _, p := range profiles {
		if !p.Ink {
			out = append(out, p)
		}
	}
	return out
}

// ProfileByID looks a device up by its paper label ("D0".."D4").
func ProfileByID(id string) (*Profile, bool) {
	for _, p := range profiles {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// Distort maps a point (mm, pad-centred) through the device's systematic
// geometric distortion: a fixed smooth displacement field plus anisotropic
// scale error. The field is a low-frequency sinusoid mixture keyed by the
// device seed — smooth, bounded by DistortAmp, and identical for every
// capture on the device.
func (p *Profile) Distort(pt geom.Point) geom.Point {
	s := p.distortSeed
	// Derive stable pseudo-random phases/wavevectors from the seed.
	f := func(k uint64) float64 {
		x := s ^ k*0x9e3779b97f4a7c15
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		return float64(x%10000)/10000*2 - 1 // [-1, 1]
	}
	// Wavelengths 12–30 mm keep the field smooth across the contact area.
	lx1 := 12 + 9*(f(1)+1)
	ly1 := 12 + 9*(f(2)+1)
	lx2 := 15 + 15*(f(3)+1)/2
	ly2 := 15 + 15*(f(4)+1)/2
	a := p.DistortAmp
	dx := a * (0.6*math.Sin(2*math.Pi*pt.X/lx1+math.Pi*f(5)) +
		0.4*math.Sin(2*math.Pi*pt.Y/ly2+math.Pi*f(6)))
	dy := a * (0.6*math.Sin(2*math.Pi*pt.Y/ly1+math.Pi*f(7)) +
		0.4*math.Sin(2*math.Pi*pt.X/lx2+math.Pi*f(8)))
	return geom.Point{
		X: pt.X*(1+p.ScaleErrX) + dx,
		Y: pt.Y*(1+p.ScaleErrY) + dy,
	}
}

// TemplateSize returns the pixel dimensions of templates captured by this
// device (contact window at device resolution).
func (p *Profile) TemplateSize() (w, h int) {
	pxPerMM := float64(p.DPI) / 25.4
	return int(math.Round(p.ContactW * pxPerMM)), int(math.Round(p.ContactH * pxPerMM))
}

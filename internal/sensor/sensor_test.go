package sensor

import (
	"math"
	"testing"

	"fpinterop/internal/geom"
	"fpinterop/internal/match"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
)

func testCohort(size int) *population.Cohort {
	return population.NewCohort(rng.New(42), population.CohortOptions{Size: size})
}

func TestProfilesMatchTable1(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("expected 5 devices, got %d", len(ps))
	}
	wantIDs := []string{"D0", "D1", "D2", "D3", "D4"}
	for i, p := range ps {
		if p.ID != wantIDs[i] {
			t.Fatalf("device %d id %s", i, p.ID)
		}
		if p.DPI != 500 {
			t.Fatalf("%s: DPI %d, want 500 (Table 1)", p.ID, p.DPI)
		}
	}
	d3, _ := ProfileByID("D3")
	if d3.PlatenW != 40.6 || d3.PlatenH != 38.1 {
		t.Fatalf("D3 platen %vx%v, want 40.6x38.1 (Table 1)", d3.PlatenW, d3.PlatenH)
	}
	d0, _ := ProfileByID("D0")
	if d0.Model != "Cross Match Guardian R2" {
		t.Fatalf("D0 model %q", d0.Model)
	}
	if d3.ContactW >= d0.ContactW {
		t.Fatal("D3 (Seek II) must have the smallest contact area")
	}
}

func TestProfileByID(t *testing.T) {
	if _, ok := ProfileByID("D2"); !ok {
		t.Fatal("D2 not found")
	}
	if _, ok := ProfileByID("D9"); ok {
		t.Fatal("unknown device found")
	}
}

func TestLiveScanProfilesExcludeInk(t *testing.T) {
	ls := LiveScanProfiles()
	if len(ls) != 4 {
		t.Fatalf("live-scan count %d", len(ls))
	}
	for _, p := range ls {
		if p.Ink {
			t.Fatalf("%s marked ink", p.ID)
		}
	}
	d4, _ := ProfileByID("D4")
	if !d4.Ink {
		t.Fatal("D4 must be the ink path")
	}
}

func TestDistortDeterministicAndBounded(t *testing.T) {
	for _, p := range Profiles() {
		for i := 0; i < 100; i++ {
			pt := geom.Point{X: -9 + float64(i%10)*2, Y: -11 + float64(i/10)*2.4}
			a := p.Distort(pt)
			b := p.Distort(pt)
			if a != b {
				t.Fatalf("%s: Distort not deterministic", p.ID)
			}
			// Displacement bounded by amplitude (each axis can reach the
			// full amplitude, hence the √2) + scale error.
			d := a.Sub(pt).Norm()
			bound := p.DistortAmp*math.Sqrt2 + 0.02*pt.Norm() + 1e-9
			if d > bound {
				t.Fatalf("%s: displacement %v exceeds bound %v at %v", p.ID, d, bound, pt)
			}
		}
	}
}

func TestDistortFieldsDifferAcrossDevices(t *testing.T) {
	d0, _ := ProfileByID("D0")
	d1, _ := ProfileByID("D1")
	sum := 0.0
	n := 0
	for i := 0; i < 50; i++ {
		pt := geom.Point{X: -8 + float64(i%10)*1.8, Y: -10 + float64(i/10)*4}
		sum += d0.Distort(pt).Dist(d1.Distort(pt))
		n++
	}
	if mean := sum / float64(n); mean < 0.08 {
		t.Fatalf("mean inter-device warp %v mm too small to matter", mean)
	}
}

func TestDistortSmooth(t *testing.T) {
	p, _ := ProfileByID("D1")
	for i := 0; i < 100; i++ {
		pt := geom.Point{X: -8 + float64(i%10)*1.8, Y: -10 + float64(i/10)*2.2}
		q := pt.Add(geom.Point{X: 0.1, Y: 0.1})
		dd := p.Distort(pt).Sub(p.Distort(q)).Norm()
		if dd > 0.35 {
			t.Fatalf("warp jump %v over 0.14mm step", dd)
		}
	}
}

func TestTemplateSize(t *testing.T) {
	d0, _ := ProfileByID("D0")
	w, h := d0.TemplateSize()
	// 16.5mm × 500dpi / 25.4 ≈ 325 px.
	if w < 300 || w > 350 || h < 380 || h > 430 {
		t.Fatalf("D0 template size %dx%d", w, h)
	}
}

func TestCaptureDeterministic(t *testing.T) {
	c := testCohort(3)
	s := c.Subjects[0]
	d0, _ := ProfileByID("D0")
	a, err := d0.CaptureSubject(s, 0, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d0.CaptureSubject(s, 0, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fidelity != b.Fidelity || a.Quality != b.Quality {
		t.Fatal("capture not deterministic")
	}
	if len(a.Template.Minutiae) != len(b.Template.Minutiae) {
		t.Fatal("minutiae counts differ between identical captures")
	}
	for i := range a.Template.Minutiae {
		if a.Template.Minutiae[i] != b.Template.Minutiae[i] {
			t.Fatal("minutiae differ between identical captures")
		}
	}
}

func TestCaptureSamplesDiffer(t *testing.T) {
	c := testCohort(3)
	s := c.Subjects[0]
	d0, _ := ProfileByID("D0")
	a, _ := d0.CaptureSubject(s, 0, CaptureOptions{})
	b, _ := d0.CaptureSubject(s, 1, CaptureOptions{})
	if a.Window == b.Window {
		t.Fatal("two samples used identical placement")
	}
}

func TestCaptureValidTemplates(t *testing.T) {
	c := testCohort(20)
	for _, p := range Profiles() {
		for _, s := range c.Subjects[:10] {
			imp, err := p.CaptureSubject(s, 0, CaptureOptions{})
			if err != nil {
				t.Fatalf("%s subject %d: %v", p.ID, s.ID, err)
			}
			if err := imp.Template.Validate(); err != nil {
				t.Fatalf("%s subject %d: %v", p.ID, s.ID, err)
			}
			if imp.SubjectID != s.ID || imp.DeviceID != p.ID {
				t.Fatal("metadata wrong")
			}
			if !imp.Quality.Valid() {
				t.Fatalf("invalid quality %v", imp.Quality)
			}
		}
	}
}

func TestCaptureMinutiaeCountsPlausible(t *testing.T) {
	c := testCohort(40)
	d0, _ := ProfileByID("D0")
	sum := 0
	for _, s := range c.Subjects {
		imp, err := d0.CaptureSubject(s, 0, CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sum += imp.Template.Count()
	}
	mean := float64(sum) / float64(len(c.Subjects))
	// Flat 500-dpi captures typically yield 25–50 usable minutiae.
	if mean < 18 || mean > 60 {
		t.Fatalf("mean minutiae per capture %v implausible", mean)
	}
}

func TestSeekIICapturesFewerMinutiae(t *testing.T) {
	c := testCohort(60)
	d0, _ := ProfileByID("D0")
	d3, _ := ProfileByID("D3")
	var sum0, sum3 int
	for _, s := range c.Subjects {
		a, _ := d0.CaptureSubject(s, 0, CaptureOptions{})
		b, _ := d3.CaptureSubject(s, 0, CaptureOptions{})
		sum0 += a.Template.Count()
		sum3 += b.Template.Count()
	}
	if sum3 >= sum0 {
		t.Fatalf("D3 (small area) captured %d total minutiae vs D0 %d", sum3, sum0)
	}
}

func TestInkFidelityLower(t *testing.T) {
	c := testCohort(60)
	d0, _ := ProfileByID("D0")
	d4, _ := ProfileByID("D4")
	var f0, f4 float64
	for _, s := range c.Subjects {
		a, _ := d0.CaptureSubject(s, 0, CaptureOptions{})
		b, _ := d4.CaptureSubject(s, 0, CaptureOptions{})
		f0 += a.Fidelity
		f4 += b.Fidelity
	}
	if f4 >= f0 {
		t.Fatalf("ink fidelity %v not below live-scan %v", f4, f0)
	}
}

func TestQualityTracksFidelity(t *testing.T) {
	c := testCohort(150)
	d1, _ := ProfileByID("D1")
	var hiQ, loQ float64
	var hiN, loN int
	for _, s := range c.Subjects {
		imp, _ := d1.CaptureSubject(s, 0, CaptureOptions{})
		if imp.Fidelity > 0.75 {
			hiQ += float64(imp.Quality)
			hiN++
		} else if imp.Fidelity < 0.5 {
			loQ += float64(imp.Quality)
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("fidelity extremes not represented in this cohort")
	}
	if hiQ/float64(hiN) >= loQ/float64(loN) {
		t.Fatal("NFIQ class does not track fidelity")
	}
}

func TestHabituationImprovesFidelity(t *testing.T) {
	c := testCohort(200)
	d2, _ := ProfileByID("D2")
	var s0, s1 float64
	for _, s := range c.Subjects {
		a, _ := d2.CaptureSubject(s, 0, CaptureOptions{})
		b, _ := d2.CaptureSubject(s, 1, CaptureOptions{})
		s0 += a.Fidelity
		s1 += b.Fidelity
	}
	if s1 <= s0 {
		t.Fatalf("habituation absent: sample1 %v <= sample0 %v", s1, s0)
	}
}

func TestQualityBoostRaisesFidelity(t *testing.T) {
	c := testCohort(30)
	d4, _ := ProfileByID("D4")
	var plain, boosted float64
	for _, s := range c.Subjects {
		a, _ := d4.CaptureSubject(s, 0, CaptureOptions{})
		src := s.CaptureSource(d4.ID, 0)
		b, _ := d4.Capture(s.Master(), s.Traits, src, CaptureOptions{QualityBoost: 0.2})
		plain += a.Fidelity
		boosted += b.Fidelity
	}
	if boosted <= plain {
		t.Fatal("QualityBoost had no effect")
	}
}

func TestCaptureNilMaster(t *testing.T) {
	d0, _ := ProfileByID("D0")
	if _, err := d0.Capture(nil, population.Traits{}, rng.New(1), CaptureOptions{}); err == nil {
		t.Fatal("expected error for nil master")
	}
}

func TestSameDeviceWarpCancelsAcrossCaptures(t *testing.T) {
	// The systematic warp is a function of the device only: the same
	// physical point maps identically in every capture on one device but
	// differently across devices. This is the interoperability mechanism.
	d0, _ := ProfileByID("D0")
	d1, _ := ProfileByID("D1")
	pt := geom.Point{X: 3.2, Y: -4.7}
	if d0.Distort(pt) != d0.Distort(pt) {
		t.Fatal("same-device warp not stable")
	}
	if d0.Distort(pt) == d1.Distort(pt) {
		t.Fatal("cross-device warps identical")
	}
}

func TestMeanCrossDeviceDisplacementExceedsNoise(t *testing.T) {
	// The relative warp between devices must be large enough to matter
	// relative to per-capture measurement noise (~0.1mm at good quality)
	// but smaller than a ridge period (~0.45mm) so matching still works.
	ids := []string{"D0", "D1", "D2", "D3"}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, _ := ProfileByID(ids[i])
			b, _ := ProfileByID(ids[j])
			sum, n := 0.0, 0
			for k := 0; k < 60; k++ {
				pt := geom.Point{X: -7 + float64(k%10)*1.5, Y: -9 + float64(k/10)*3.5}
				sum += a.Distort(pt).Dist(b.Distort(pt))
				n++
			}
			mean := sum / float64(n)
			if mean < 0.05 || mean > 1.2 {
				t.Fatalf("%s vs %s mean relative warp %v mm outside useful band", ids[i], ids[j], mean)
			}
		}
	}
}

func TestCaptureImageProducesRidges(t *testing.T) {
	if testing.Short() {
		t.Skip("image path is slow")
	}
	c := testCohort(2)
	d0, _ := ProfileByID("D0")
	s := c.Subjects[0]
	img, window, err := d0.CaptureImage(s.Master(), s.Traits, s.CaptureSource("D0-img", 0), CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if window.Width() <= 0 {
		t.Fatal("empty capture window")
	}
	dark := 0
	for _, v := range img.Pix {
		if v < 0.35 {
			dark++
		}
	}
	if frac := float64(dark) / float64(len(img.Pix)); frac < 0.05 || frac > 0.9 {
		t.Fatalf("ridge fraction %v implausible", frac)
	}
}

func TestCaptureImageNilMaster(t *testing.T) {
	d0, _ := ProfileByID("D0")
	if _, _, err := d0.CaptureImage(nil, population.Traits{}, rng.New(1), CaptureOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSmoothNoiseRangeAndContinuity(t *testing.T) {
	for i := 0; i < 200; i++ {
		x := float64(i) * 0.13
		v := smoothNoise(99, x, x*0.7)
		if v < 0 || v > 1 {
			t.Fatalf("noise out of range: %v", v)
		}
		w := smoothNoise(99, x+0.01, x*0.7)
		if math.Abs(v-w) > 0.2 {
			t.Fatalf("noise discontinuity: %v vs %v", v, w)
		}
	}
}

func TestRescanNearlyIdentical(t *testing.T) {
	c := testCohort(5)
	d4, _ := ProfileByID("D4")
	s := c.Subjects[0]
	orig, err := d4.CaptureSubject(s, 0, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := d4.Rescan(orig, s.CaptureSource("D4-rescan", 1))
	if err != nil {
		t.Fatal(err)
	}
	if re.Window != orig.Window || re.Fidelity != orig.Fidelity {
		t.Fatal("rescan changed the physical impression")
	}
	if re.Sample != orig.Sample+1 {
		t.Fatal("rescan sample index wrong")
	}
	// Minutiae counts nearly identical (re-detection loses a few percent).
	lost := orig.Template.Count() - re.Template.Count()
	if lost < 0 || lost > orig.Template.Count()/4 {
		t.Fatalf("rescan lost %d of %d minutiae", lost, orig.Template.Count())
	}
	if err := re.Template.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRescanNil(t *testing.T) {
	d4, _ := ProfileByID("D4")
	if _, err := d4.Rescan(nil, rng.New(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestCaptureFinger(t *testing.T) {
	c := testCohort(3)
	s := c.Subjects[0]
	d0, _ := ProfileByID("D0")
	idx, err := d0.CaptureFinger(s, population.RightIndex, 0, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := d0.CaptureFinger(s, population.RightMiddle, 0, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Template.Count() == 0 || mid.Template.Count() == 0 {
		t.Fatal("empty finger captures")
	}
	// Different fingers of one subject must not match like the same finger.
	var m match.HoughMatcher
	same, err := m.Match(idx.Template, idx.Template)
	if err != nil {
		t.Fatal(err)
	}
	crossFinger, err := m.Match(idx.Template, mid.Template)
	if err != nil {
		t.Fatal(err)
	}
	if crossFinger.Score >= same.Score {
		t.Fatalf("different fingers matched as well as identity: %v vs %v",
			crossFinger.Score, same.Score)
	}
	if _, err := d0.CaptureFinger(s, population.Finger(99), 0, CaptureOptions{}); err == nil {
		t.Fatal("expected invalid finger error")
	}
}

package shard

import (
	"context"
	"io"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
)

// Enrollment is one batched enrollment item — the same shape the wire
// protocol batches, aliased so router batches ship to remote shards
// without a conversion copy.
type Enrollment = matchsvc.Enrollment

// Backend is one shard of the partitioned gallery: a local
// gallery.Store, or a remote matchd reached through matchsvc.Client.
// Every call takes a context.Context first — a shard is potentially a
// network hop away, so callers must be able to bound and cancel each
// operation. Implementations must be safe for concurrent use and
// return promptly (with ctx.Err()) once the context is done.
type Backend interface {
	// Name identifies the shard on the ring (a label for local shards,
	// typically the address for remote ones). Names must be unique and
	// stable: the ring hashes them, so renaming a shard moves its keys.
	Name() string
	Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error
	// EnrollBatch registers many templates, ideally in fewer round trips
	// than one-by-one Enroll. Not atomic: a failure may leave a prefix of
	// the batch enrolled.
	EnrollBatch(ctx context.Context, items []Enrollment) error
	Remove(ctx context.Context, id string) error
	// Has reports whether id is enrolled on this shard. The router uses
	// it as the duplicate guard and read director for keys whose
	// ownership is mid-migration.
	Has(ctx context.Context, id string) (bool, error)
	// Scan returns up to max enrollments whose ID sorts strictly after
	// afterID, in ID order; an empty page ends the scan. May return
	// fewer than max (remote shards respect the frame cap), so callers
	// page by cursor, not by count. The rebalancer streams a shard's
	// ring-moved subjects out with it while the shard keeps serving.
	Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error)
	Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error)
	IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error)
	// Len returns the shard's enrollment count; the error reports an
	// unreachable shard (always nil for local shards).
	Len(ctx context.Context) (int, error)
}

// Saver is implemented by backends whose gallery can be serialized
// (local shards; a remote matchd owns its own persistence).
type Saver interface {
	SaveTo(w io.Writer) error
}

// Loader is implemented by backends whose gallery can be replaced from
// a serialized stream.
type Loader interface {
	LoadFrom(r io.Reader) error
}

// Local adapts a *gallery.Store to the Backend interface.
type Local struct {
	name  string
	store *gallery.Store
}

// NewLocal wraps an in-process store as a shard named name.
func NewLocal(name string, store *gallery.Store) *Local {
	if store == nil {
		store = gallery.New(nil)
	}
	return &Local{name: name, store: store}
}

// Store exposes the wrapped store (e.g. to enable its index).
func (l *Local) Store() *gallery.Store { return l.store }

func (l *Local) Name() string { return l.name }

func (l *Local) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.store.Enroll(id, deviceID, tpl)
}

func (l *Local) EnrollBatch(ctx context.Context, items []Enrollment) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := l.store.Enroll(it.ID, it.DeviceID, it.Template); err != nil {
			return err
		}
	}
	return nil
}

func (l *Local) Remove(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.store.Remove(id)
}

func (l *Local) Has(ctx context.Context, id string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return l.store.Has(id), nil
}

func (l *Local) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.store.Scan(afterID, max), nil
}

func (l *Local) Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	return l.store.VerifyContext(ctx, id, probe)
}

func (l *Local) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	return l.store.IdentifyDetailedContext(ctx, probe, k)
}

func (l *Local) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return l.store.Len(), nil
}

func (l *Local) SaveTo(w io.Writer) error   { return l.store.SaveTo(w) }
func (l *Local) LoadFrom(r io.Reader) error { return l.store.LoadFrom(r) }

// Remote adapts a matchsvc.Client to the Backend interface. The client
// serializes requests over one connection, so one Remote sustains one
// in-flight request; the router's fan-out runs shards in parallel, not
// requests within a shard.
type Remote struct {
	name string
	cli  *matchsvc.Client
}

// NewRemote wraps a connected client as a shard named name (typically
// the dialed address).
func NewRemote(name string, cli *matchsvc.Client) *Remote {
	return &Remote{name: name, cli: cli}
}

func (r *Remote) Name() string { return r.name }

func (r *Remote) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	return r.cli.Enroll(ctx, id, deviceID, tpl)
}

func (r *Remote) EnrollBatch(ctx context.Context, items []Enrollment) error {
	_, err := r.cli.EnrollBatch(ctx, items)
	return err
}

func (r *Remote) Remove(ctx context.Context, id string) error { return r.cli.Remove(ctx, id) }

func (r *Remote) Has(ctx context.Context, id string) (bool, error) { return r.cli.Has(ctx, id) }

func (r *Remote) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	return r.cli.Scan(ctx, afterID, max)
}

func (r *Remote) Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	res, err := r.cli.Verify(ctx, id, probe)
	if err != nil {
		return match.Result{}, err
	}
	return match.Result{Score: res.Score, Matched: res.Matched}, nil
}

func (r *Remote) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	return r.cli.IdentifyEx(ctx, probe, k)
}

func (r *Remote) Len(ctx context.Context) (int, error) { return r.cli.Count(ctx) }

package shard

import (
	"context"
	"io"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/wal"
)

// DurableLocal adapts a WAL-backed store to the Backend interface: the
// Local shape with every mutation routed through the write-ahead log,
// so an acknowledged enrollment on this shard survives a crash. Batches
// use the WAL's group commit (one fsync per batch) and are atomic,
// unlike Local's. Reads are the embedded gallery's own.
//
// DurableLocal implements Saver (snapshotting the live gallery is just
// a read) but deliberately not Loader: replacing a durable shard's
// contents behind its log would diverge memory from disk. Recovery
// happens in wal.Open, nowhere else.
type DurableLocal struct {
	name  string
	store *wal.Store
}

// NewDurableLocal wraps a WAL-backed store as a shard named name.
func NewDurableLocal(name string, store *wal.Store) *DurableLocal {
	return &DurableLocal{name: name, store: store}
}

// Store exposes the wrapped durable store (e.g. to compact or close it).
func (l *DurableLocal) Store() *wal.Store { return l.store }

func (l *DurableLocal) Name() string { return l.name }

func (l *DurableLocal) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.store.Enroll(id, deviceID, tpl)
}

func (l *DurableLocal) EnrollBatch(ctx context.Context, items []Enrollment) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	exports := make([]gallery.Export, len(items))
	for i, it := range items {
		exports[i] = gallery.Export{ID: it.ID, DeviceID: it.DeviceID, Template: it.Template}
	}
	return l.store.EnrollBatch(exports)
}

func (l *DurableLocal) Remove(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.store.Remove(id)
}

func (l *DurableLocal) Has(ctx context.Context, id string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return l.store.Has(id), nil
}

func (l *DurableLocal) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.store.Scan(afterID, max), nil
}

func (l *DurableLocal) Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	return l.store.VerifyContext(ctx, id, probe)
}

func (l *DurableLocal) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	return l.store.IdentifyDetailedContext(ctx, probe, k)
}

func (l *DurableLocal) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return l.store.Len(), nil
}

func (l *DurableLocal) SaveTo(w io.Writer) error { return l.store.SaveTo(w) }

package shard

import (
	"context"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
)

// Fold collapses scatter-gather statistics into the single-store
// gallery.IdentifyStats shape (sums of sizes, shortlists, and scans;
// Indexed when every answering shard served from its retrieval index),
// so sharded searches report through interfaces built around one store.
func (s IdentifyStats) Fold() gallery.IdentifyStats {
	return gallery.IdentifyStats{
		GallerySize: s.GallerySize,
		Shortlist:   s.Shortlist,
		Scanned:     s.Scanned,
		Indexed:     s.IndexedShards > 0 && s.FallbackShards == 0,
	}
}

// Front adapts a Router to the matchsvc.Gallery interface, letting a
// matchd process serve a sharded gallery through the same wire protocol
// as a single store. The wire protocol carries no caller deadline, so
// the Front is a genuine context root: each call starts from
// context.Background() (annotated for fpvet). Identification is still
// bounded on the serving side by the router's ShardTimeout, which caps
// each shard's scatter leg; enroll, remove, verify, and len legs run
// unbounded, exactly as they do for a single local store behind the
// same protocol. Callers that need end-to-end deadlines use the
// context-aware fpis.Service path instead of the wire front.
// IdentifyDetailed folds the per-shard statistics into the
// single-store shape.
type Front struct {
	*Router
}

func (f Front) Enroll(id, deviceID string, tpl *minutiae.Template) error {
	return f.Router.Enroll(context.Background(), id, deviceID, tpl) //fpvet:allow ctxflow wire protocol carries no caller deadline
}

func (f Front) Remove(id string) error {
	return f.Router.Remove(context.Background(), id) //fpvet:allow ctxflow wire protocol carries no caller deadline
}

func (f Front) Verify(id string, probe *minutiae.Template) (match.Result, error) {
	return f.Router.Verify(context.Background(), id, probe) //fpvet:allow ctxflow wire protocol carries no caller deadline
}

func (f Front) IdentifyDetailed(probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	cands, st, err := f.Router.IdentifyDetailed(context.Background(), probe, k) //fpvet:allow ctxflow wire protocol carries no caller deadline
	return cands, st.Fold(), err
}

func (f Front) Len() int {
	return f.Router.Len(context.Background()) //fpvet:allow ctxflow wire protocol carries no caller deadline
}

package shard

import (
	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// Fold collapses scatter-gather statistics into the single-store
// gallery.IdentifyStats shape (sums of sizes, shortlists, and scans;
// Indexed when every answering shard served from its retrieval index),
// so sharded searches report through interfaces built around one store.
func (s IdentifyStats) Fold() gallery.IdentifyStats {
	return gallery.IdentifyStats{
		GallerySize: s.GallerySize,
		Shortlist:   s.Shortlist,
		Scanned:     s.Scanned,
		Indexed:     s.IndexedShards > 0 && s.FallbackShards == 0,
	}
}

// Front adapts a Router to the matchsvc.Gallery interface, letting a
// matchd process serve a sharded gallery through the same wire protocol
// as a single store. Everything but IdentifyDetailed promotes from the
// embedded router; IdentifyDetailed folds the per-shard statistics.
type Front struct {
	*Router
}

func (f Front) IdentifyDetailed(probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	cands, st, err := f.Router.IdentifyDetailed(probe, k)
	return cands, st.Fold(), err
}

package shard

// Hedged-identify tests: a shard whose first answer never comes forces
// the router to re-send the leg after the hedge delay, and the contract
// is (a) the search still succeeds, (b) exactly one attempt's answer is
// used so results are bit-identical to the unhedged path, and (c) the
// fired/won/wasted counters tell the story.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/obs"
)

// laggyBackend stalls its first `slow` IdentifyDetailed calls until the
// context is cancelled — a replica with an infinitely long tail.
type laggyBackend struct {
	Backend
	calls atomic.Int64
	slow  int64
}

func (b *laggyBackend) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	if b.calls.Add(1) <= b.slow {
		<-ctx.Done()
		return nil, gallery.IdentifyStats{}, ctx.Err()
	}
	return b.Backend.IdentifyDetailed(ctx, probe, k)
}

// failFastBackend fails IdentifyDetailed immediately.
type failFastBackend struct {
	Backend
}

func (b *failFastBackend) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	return nil, gallery.IdentifyStats{}, errors.New("shard down")
}

// hedgeFixtureStores enrolls the shared fixtures through an unhedged
// router so both routers under comparison see identical shard contents.
func hedgeFixtureStores(t *testing.T) (locals []Backend, want func(probe *minutiae.Template) []gallery.Candidate) {
	t.Helper()
	gal, _ := fixtures(t)
	locals = []Backend{
		NewLocal("shard-0", gallery.New(nil)),
		NewLocal("shard-1", gallery.New(nil)),
	}
	plain, err := New(locals, Options{})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: subjectID(i), DeviceID: "D0", Template: tpl}
	}
	if err := plain.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	want = func(probe *minutiae.Template) []gallery.Candidate {
		cands, err := plain.Identify(ctx, probe, 5)
		if err != nil {
			t.Fatalf("unhedged identify: %v", err)
		}
		return cands
	}
	return locals, want
}

func TestHedgedIdentifyRescuesSlowShardBitIdentical(t *testing.T) {
	locals, want := hedgeFixtureStores(t)
	_, probes := fixtures(t)
	laggy := &laggyBackend{Backend: locals[0], slow: 1}
	reg := obs.NewRegistry()
	hedged, err := New([]Backend{laggy, locals[1]}, Options{
		HedgeDelay:   25 * time.Millisecond,
		ShardTimeout: 10 * time.Second,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := hedged.Identify(ctx, probes[i], 5)
		if err != nil {
			t.Fatalf("hedged identify %d: %v", i, err)
		}
		if w := want(probes[i]); !reflect.DeepEqual(got, w) {
			t.Errorf("hedged identify %d diverges from unhedged:\n got %+v\nwant %+v", i, got, w)
		}
	}
	if fired := hedged.met.hedgesFired.Value(); fired < 1 {
		t.Fatalf("hedgesFired = %d, want >= 1", fired)
	}
	if won := hedged.met.hedgesWon.Value(); won < 1 {
		t.Fatalf("hedgesWon = %d, want >= 1", won)
	}
	if stalled := laggy.calls.Load(); stalled < 2 {
		t.Fatalf("laggy backend saw %d calls, want the hedge's second attempt", stalled)
	}
}

func TestHedgeWastedWhenPrimaryStillWins(t *testing.T) {
	locals, want := hedgeFixtureStores(t)
	_, probes := fixtures(t)
	reg := obs.NewRegistry()
	// A hedge delay of zero nanoseconds is "off"; use 1ns so the hedge
	// fires on effectively every search while the primary still answers —
	// every fired hedge should be wasted, never change the result.
	hedged, err := New(locals, Options{
		HedgeDelay: time.Nanosecond,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := hedged.Identify(ctx, probes[i], 5)
		if err != nil {
			t.Fatalf("hedged identify %d: %v", i, err)
		}
		if w := want(probes[i]); !reflect.DeepEqual(got, w) {
			t.Errorf("identify %d with racing hedges diverges:\n got %+v\nwant %+v", i, got, w)
		}
	}
	fired := hedged.met.hedgesFired.Value()
	won := hedged.met.hedgesWon.Value()
	wasted := hedged.met.hedgesWasted.Value()
	if fired != won+wasted {
		t.Fatalf("hedge accounting leaks: fired=%d won=%d wasted=%d", fired, won, wasted)
	}
}

func TestHedgeDoesNotFireOnFastFailure(t *testing.T) {
	locals, _ := hedgeFixtureStores(t)
	_, probes := fixtures(t)
	reg := obs.NewRegistry()
	hedged, err := New([]Backend{&failFastBackend{Backend: locals[0]}, locals[1]}, Options{
		HedgeDelay: 2 * time.Second,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	// SkipDegraded: the healthy shard still answers.
	if _, err := hedged.Identify(ctx, probes[0], 5); err != nil {
		t.Fatalf("identify with one failing shard: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("fast failure waited %v; must not sit out the hedge delay", elapsed)
	}
	if fired := hedged.met.hedgesFired.Value(); fired != 0 {
		t.Fatalf("hedgesFired = %d on an immediately-failing shard, want 0", fired)
	}
}

// replicaSetBackend fakes a two-member replica set: member 0 stalls
// identifies until cancelled, member 1 answers from the embedded
// backend. It records the avoid constraint of every attempt so a test
// can prove the hedge was steered away from the first attempt's member.
type replicaSetBackend struct {
	Backend
	mu     sync.Mutex
	avoids []int
	served []int
}

func (b *replicaSetBackend) Replicas() int { return 2 }

func (b *replicaSetBackend) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	return b.IdentifyDetailedAvoiding(ctx, probe, k, -1, nil)
}

func (b *replicaSetBackend) IdentifyDetailedAvoiding(ctx context.Context, probe *minutiae.Template, k int, avoid int, picked chan<- int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	member := 0
	if avoid == 0 {
		member = 1
	}
	b.mu.Lock()
	b.avoids = append(b.avoids, avoid)
	b.served = append(b.served, member)
	b.mu.Unlock()
	if picked != nil {
		select {
		case picked <- member:
		default:
		}
	}
	if member == 0 {
		// The stalled member: pins the first attempt until the caller
		// gives up, like a replica wedged mid-GC.
		<-ctx.Done()
		return nil, gallery.IdentifyStats{}, ctx.Err()
	}
	return b.Backend.IdentifyDetailed(ctx, probe, k)
}

// TestHedgeAvoidsOriginatingReplica is the regression test for hedges
// that re-ask the machine the stalled first attempt is already waiting
// on: with a replica-capable backend, the hedge leg must carry the
// first attempt's member as avoid and be served by a different member.
func TestHedgeAvoidsOriginatingReplica(t *testing.T) {
	locals, want := hedgeFixtureStores(t)
	_, probes := fixtures(t)
	rsb := &replicaSetBackend{Backend: locals[0]}
	reg := obs.NewRegistry()
	hedged, err := New([]Backend{rsb, locals[1]}, Options{
		HedgeDelay:   25 * time.Millisecond,
		ShardTimeout: 10 * time.Second,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hedged.Identify(ctx, probes[0], 5)
	if err != nil {
		t.Fatalf("hedged identify over a replica set: %v", err)
	}
	if w := want(probes[0]); !reflect.DeepEqual(got, w) {
		t.Errorf("replica-hedged identify diverges:\n got %+v\nwant %+v", got, w)
	}
	rsb.mu.Lock()
	avoids, served := append([]int(nil), rsb.avoids...), append([]int(nil), rsb.served...)
	rsb.mu.Unlock()
	if len(avoids) < 2 {
		t.Fatalf("replica backend saw %d attempts, want the primary and the hedge", len(avoids))
	}
	if avoids[0] != -1 {
		t.Fatalf("first attempt carried avoid=%d, want unconstrained (-1)", avoids[0])
	}
	if avoids[1] != 0 {
		t.Fatalf("hedge attempt carried avoid=%d, want the first attempt's member 0", avoids[1])
	}
	if served[1] != 1 {
		t.Fatalf("hedge served by member %d, want the other member 1", served[1])
	}
	if won := hedged.met.hedgesWon.Value(); won < 1 {
		t.Fatalf("hedgesWon = %d, want the steered hedge to win", won)
	}
}

func TestHedgeDelayAdaptsToObservedP95(t *testing.T) {
	reg := obs.NewRegistry()
	backends := []Backend{
		NewLocal("shard-0", gallery.New(nil)),
		NewLocal("shard-1", gallery.New(nil)),
	}
	r, err := New(backends, Options{HedgeDelay: 500 * time.Millisecond, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	h := r.topo().health[0]
	if h.met == nil {
		t.Fatal("metered router should anchor shard metrics on health")
	}
	// Below the sample floor the static option rules.
	if d := r.hedgeDelay(h); d != 500*time.Millisecond {
		t.Fatalf("pre-history hedge delay = %v, want the static 500ms", d)
	}
	// Feed fast-latency history; the delay must adapt to the observed
	// p95 instead of the (much larger) static option.
	for i := 0; i < 2*hedgeMinSamples; i++ {
		h.met.lat.Observe(int64(2 * time.Millisecond))
	}
	d := r.hedgeDelay(h)
	if d <= 0 || d >= 500*time.Millisecond {
		t.Fatalf("adapted hedge delay = %v, want an observed-p95-scale value", d)
	}
}

package shard

import "fpinterop/internal/obs"

// routerMetrics holds the router-wide scatter-gather handles. Nil when
// Options.Registry was not set; every record site branches on that.
type routerMetrics struct {
	searches     *obs.Counter   // shard_searches_total
	partial      *obs.Counter   // shard_partial_searches_total
	fanout       *obs.Histogram // shard_scatter_fanout
	hedgesFired  *obs.Counter   // shard_hedges_fired_total
	hedgesWon    *obs.Counter   // shard_hedges_won_total
	hedgesWasted *obs.Counter   // shard_hedges_wasted_total
}

// shardMetrics holds one backend's handles. It rides on the health
// struct because health is already the per-shard state the request
// paths snapshot — metric handles follow the same replaced-on-write
// lifecycle for free.
type shardMetrics struct {
	lat      *obs.Histogram // shard_identify_latency_ns
	degraded *obs.Gauge     // shard_degraded (0/1)
	degrades *obs.Counter   // shard_degraded_total
	readmits *obs.Counter   // shard_readmissions_total
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	if reg == nil {
		return nil
	}
	return &routerMetrics{
		searches: reg.Counter("shard_searches_total",
			"Scatter-gather identifications served by the router."),
		partial: reg.Counter("shard_partial_searches_total",
			"Identifications with incomplete coverage (a shard skipped or failed)."),
		fanout: reg.Histogram("shard_scatter_fanout",
			"Shards queried per identification.", obs.SizeBuckets()),
		hedgesFired: reg.Counter("shard_hedges_fired_total",
			"Scatter legs re-sent after the hedge delay."),
		hedgesWon: reg.Counter("shard_hedges_won_total",
			"Hedged legs where the re-sent attempt answered first."),
		hedgesWasted: reg.Counter("shard_hedges_wasted_total",
			"Hedged legs where the primary answered first anyway."),
	}
}

func newShardMetrics(reg *obs.Registry, name string) *shardMetrics {
	if reg == nil {
		return nil
	}
	m := &shardMetrics{
		lat: reg.HistogramVec("shard_identify_latency_ns",
			"Per-shard identification latency within the scatter, in nanoseconds.",
			obs.LatencyBuckets(), "shard").With(name),
		degraded: reg.GaugeVec("shard_degraded",
			"1 while the shard is marked degraded and excluded from the scatter.",
			"shard").With(name),
		degrades: reg.CounterVec("shard_degraded_total",
			"Healthy-to-degraded transitions.", "shard").With(name),
		readmits: reg.CounterVec("shard_readmissions_total",
			"Degraded-to-healthy readmissions.", "shard").With(name),
	}
	m.degraded.Set(0)
	return m
}

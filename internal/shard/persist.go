package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fpinterop/internal/atomicio"
)

// Router persistence container:
//
//	0   4  magic "FPSR"
//	4   2  version (1)
//	6   4  shard count
//	then per shard, in backend order:
//	    2  name length, name bytes
//	    8  stream length, embedded gallery stream (gallery.Store format)
//
// Each shard's stream is the store's own container, so a shard file
// slice loads into a standalone store too. Loading restores every shard
// and — through gallery.Store.LoadFrom — rebuilds each shard's
// retrieval index when one is enabled.
var (
	routerMagic = [4]byte{'F', 'P', 'S', 'R'}

	// ErrBadRouterFormat reports a stream that is not a serialized
	// sharded gallery.
	ErrBadRouterFormat = errors.New("shard: bad router store format")
	// ErrNotPersistent reports a backend without local persistence
	// (remote shards own their own files).
	ErrNotPersistent = errors.New("shard: backend does not support persistence")
	// ErrShardMismatch reports a saved layout that does not match the
	// router's backends (count or names); rebalancing across layouts is
	// a separate concern from restoring one.
	ErrShardMismatch = errors.New("shard: saved layout does not match router backends")
)

const routerVersion = 1

// SaveTo serializes every shard's gallery in backend order. All
// backends must implement Saver.
func (r *Router) SaveTo(w io.Writer) error {
	t := r.topo()
	if t.mig != nil {
		// A migration-time snapshot would freeze subjects mid-move on
		// two shards and a ring that matches neither; wait for cutover.
		return ErrMigrationInProgress
	}
	for _, b := range t.backends {
		if _, ok := b.(Saver); !ok {
			return fmt.Errorf("%w: %q", ErrNotPersistent, b.Name())
		}
	}
	if _, err := w.Write(routerMagic[:]); err != nil {
		return fmt.Errorf("shard: write magic: %w", err)
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint16(u16[:], routerVersion)
	if _, err := w.Write(u16[:]); err != nil {
		return fmt.Errorf("shard: write version: %w", err)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(t.backends)))
	if _, err := w.Write(u32[:]); err != nil {
		return fmt.Errorf("shard: write count: %w", err)
	}
	for _, b := range t.backends {
		name := b.Name()
		if len(name) > 1<<16-1 {
			return fmt.Errorf("shard: name %q too long", name)
		}
		binary.BigEndian.PutUint16(u16[:], uint16(len(name)))
		if _, err := w.Write(u16[:]); err != nil {
			return fmt.Errorf("shard: write name length: %w", err)
		}
		if _, err := io.WriteString(w, name); err != nil {
			return fmt.Errorf("shard: write name: %w", err)
		}
		var buf bytes.Buffer
		if err := b.(Saver).SaveTo(&buf); err != nil {
			return fmt.Errorf("shard %q: save: %w", name, err)
		}
		binary.BigEndian.PutUint64(u64[:], uint64(buf.Len()))
		if _, err := w.Write(u64[:]); err != nil {
			return fmt.Errorf("shard: write stream length: %w", err)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("shard %q: write stream: %w", name, err)
		}
	}
	return nil
}

// SaveFile serializes the router to path crash-safely: the stream is
// staged in a temporary file in the same directory and atomically
// renamed into place, so a crash mid-snapshot can never leave a
// truncated container on disk.
func (r *Router) SaveFile(path string) error {
	return atomicio.WriteFile(path, 0o644, r.SaveTo)
}

// LoadFrom restores every shard from a stream written by SaveTo. The
// saved shard count and names must match the router's backends exactly
// (same names, same order): routing depends on names, so loading a
// different layout would strand enrollments on the wrong shard. All
// backends must implement Loader; each shard's store rebuilds its own
// retrieval index as part of its LoadFrom.
func (r *Router) LoadFrom(src io.Reader) error {
	t := r.topo()
	if t.mig != nil {
		return ErrMigrationInProgress
	}
	for _, b := range t.backends {
		if _, ok := b.(Loader); !ok {
			return fmt.Errorf("%w: %q", ErrNotPersistent, b.Name())
		}
	}
	var magic [4]byte
	if _, err := io.ReadFull(src, magic[:]); err != nil {
		return fmt.Errorf("shard: read magic: %w", err)
	}
	if magic != routerMagic {
		return ErrBadRouterFormat
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(src, u16[:]); err != nil {
		return fmt.Errorf("shard: read version: %w", err)
	}
	if v := binary.BigEndian.Uint16(u16[:]); v != routerVersion {
		return fmt.Errorf("shard: unsupported router store version %d", v)
	}
	if _, err := io.ReadFull(src, u32[:]); err != nil {
		return fmt.Errorf("shard: read count: %w", err)
	}
	if count := binary.BigEndian.Uint32(u32[:]); int(count) != len(t.backends) {
		return fmt.Errorf("%w: file has %d shards, router has %d",
			ErrShardMismatch, count, len(t.backends))
	}
	for i, b := range t.backends {
		if _, err := io.ReadFull(src, u16[:]); err != nil {
			return fmt.Errorf("shard: read name length: %w", err)
		}
		nameBuf := make([]byte, binary.BigEndian.Uint16(u16[:]))
		if _, err := io.ReadFull(src, nameBuf); err != nil {
			return fmt.Errorf("shard: read name: %w", err)
		}
		if string(nameBuf) != b.Name() {
			return fmt.Errorf("%w: shard %d is %q in the file, %q in the router",
				ErrShardMismatch, i, nameBuf, b.Name())
		}
		if _, err := io.ReadFull(src, u64[:]); err != nil {
			return fmt.Errorf("shard: read stream length: %w", err)
		}
		if err := b.(Loader).LoadFrom(io.LimitReader(src, int64(binary.BigEndian.Uint64(u64[:])))); err != nil {
			return fmt.Errorf("shard %q: load: %w", b.Name(), err)
		}
	}
	return nil
}

package shard

import (
	"context"
	"errors"
	"fmt"

	"fpinterop/internal/gallery"
)

// ErrMigrationInProgress reports an operation that must wait for the
// current online resharding to cut over.
var ErrMigrationInProgress = errors.New("shard: migration in progress")

// RebalanceStats summarises one completed rebalance.
type RebalanceStats struct {
	// Moved is the number of subjects transferred to the joining shard.
	Moved int
	// Sweeps is how many full passes over the old shards ran; the last
	// sweep always moves zero (that is the drain condition).
	Sweeps int
	// Conflicts counts moves that raced a concurrent removal: the old
	// copy vanished before the rebalancer could retire it, so the
	// fresh copy on the joining shard was compensated away rather than
	// left to resurrect a deleted subject.
	Conflicts int
}

// Rebalancer streams ring-moved subjects to a shard registered with
// AddShard while the router keeps serving. Use one goroutine per
// rebalancer; the router itself stays safe for concurrent use
// throughout.
type Rebalancer struct {
	r        *Router
	joining  int
	newRing  *ring
	pageSize int
	done     bool
}

// SetPageSize tunes how many subjects each Scan page requests
// (default 256). Remote shards may return fewer per page to respect
// the wire frame cap.
func (rb *Rebalancer) SetPageSize(n int) {
	if n > 0 {
		rb.pageSize = n
	}
}

// AddShard registers b as a joining shard and starts an online
// resharding: the new ring (old names plus b's) immediately routes
// writes, so new enrollments land on their final owner, while reads
// keep covering both owners of every mid-flight key. Only keys the
// consistent-hash ring moves to b migrate — everything else stays put.
// Call Run on the returned Rebalancer to stream the moved subjects
// over and cut the ring over; until then the router serves in the
// dual-read migration mode. One migration may run at a time.
func (r *Router) AddShard(b Backend) (*Rebalancer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mig != nil {
		return nil, ErrMigrationInProgress
	}
	name := b.Name()
	names := make([]string, 0, len(r.backends)+1)
	for _, existing := range r.backends {
		if existing.Name() == name {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
		}
		names = append(names, existing.Name())
	}
	names = append(names, name)
	newRing := newRing(names, r.opt.VirtualNodes)
	// Replaced-on-write: request paths hold snapshots of the old
	// slices, so they must not be appended to in place.
	backends := make([]Backend, 0, len(r.backends)+1)
	backends = append(backends, r.backends...)
	backends = append(backends, b)
	healths := make([]*health, 0, len(r.health)+1)
	healths = append(healths, r.health...)
	healths = append(healths, &health{met: newShardMetrics(r.opt.Registry, name)})
	r.backends = backends
	r.health = healths
	r.mig = &migration{joining: len(backends) - 1, newRing: newRing}
	return &Rebalancer{r: r, joining: len(backends) - 1, newRing: newRing, pageSize: 256}, nil
}

// Run streams every subject the new ring assigns to the joining shard
// from its old owner, then cuts the router over to the new ring. Each
// subject is copied before its old copy is retired, so an interruption
// (error or cancellation) can leave subjects briefly doubled — which
// identification deduplicates — but never lost; Run may simply be
// called again to resume. Sweeps repeat until one finds nothing left
// to move (enrollments racing the sweep land on the new owner already,
// so the backlog only drains). On success the migration is complete
// and the router serves the grown topology with no dual-read overhead.
func (rb *Rebalancer) Run(ctx context.Context) (RebalanceStats, error) {
	var stats RebalanceStats
	if rb.done {
		return stats, errors.New("shard: rebalance already completed")
	}
	t := rb.r.topo()
	if t.mig == nil || t.mig.newRing != rb.newRing {
		return stats, errors.New("shard: rebalancer does not match the router's migration")
	}
	join := t.backends[rb.joining]
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		moved, err := rb.sweep(ctx, t, join, &stats)
		stats.Sweeps++
		if err != nil {
			return stats, err
		}
		// Drain condition: a sweep that moved nothing saw every old
		// shard with no subjects left to give. At least two sweeps run,
		// so anything enrolled on an old owner while the first sweep
		// was mid-flight is re-scanned before cutover.
		if moved == 0 && stats.Sweeps >= 2 {
			break
		}
	}
	rb.r.mu.Lock()
	rb.r.ring = rb.newRing
	rb.r.mig = nil
	rb.r.mu.Unlock()
	rb.done = true
	return stats, nil
}

// sweep makes one pass over every old shard, moving the subjects the
// new ring assigns to the joining shard.
func (rb *Rebalancer) sweep(ctx context.Context, t topo, join Backend, stats *RebalanceStats) (int, error) {
	moved := 0
	for i, b := range t.backends {
		if i == rb.joining {
			continue
		}
		after := ""
		for {
			if err := ctx.Err(); err != nil {
				return moved, err
			}
			page, err := b.Scan(ctx, after, rb.pageSize)
			rb.r.recordCtx(ctx, t.health[i], err)
			if err != nil {
				return moved, routingErr(b, err)
			}
			if len(page) == 0 {
				break
			}
			after = page[len(page)-1].ID
			var moving []gallery.Export
			for _, e := range page {
				if rb.newRing.owner(e.ID) == rb.joining {
					moving = append(moving, e)
				}
			}
			if len(moving) == 0 {
				continue
			}
			n, err := rb.moveBatch(ctx, t, b, join, moving, stats)
			moved += n
			if err != nil {
				return moved, err
			}
		}
	}
	return moved, nil
}

// moveBatch copies the items to the joining shard, then retires the
// old copies. Copy-before-delete is the invariant that makes the whole
// migration lossless: at every instant each subject exists on at least
// one shard the router reads.
func (rb *Rebalancer) moveBatch(ctx context.Context, t topo, old Backend, join Backend, items []gallery.Export, stats *RebalanceStats) (int, error) {
	batch := make([]Enrollment, len(items))
	for i, e := range items {
		batch[i] = Enrollment{ID: e.ID, DeviceID: e.DeviceID, Template: e.Template}
	}
	err := join.EnrollBatch(ctx, batch)
	rb.r.recordCtx(ctx, t.health[rb.joining], err)
	if err != nil {
		// The batch may have tripped over a subject that already made
		// it across in an earlier interrupted run; retry item by item,
		// skipping the ones the joining shard already holds.
		for _, e := range items {
			ok, herr := join.Has(ctx, e.ID)
			rb.r.recordCtx(ctx, t.health[rb.joining], herr)
			if herr != nil {
				return 0, routingErr(join, herr)
			}
			if ok {
				continue
			}
			eerr := join.Enroll(ctx, e.ID, e.DeviceID, e.Template)
			rb.r.recordCtx(ctx, t.health[rb.joining], eerr)
			if eerr != nil {
				return 0, routingErr(join, eerr)
			}
		}
	}
	moved := 0
	for _, e := range items {
		if err := old.Remove(ctx, e.ID); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return moved, cerr
			}
			// The old copy would not retire — almost always because a
			// concurrent Remove deleted the subject between our copy
			// and now. Compensate by withdrawing the fresh copy too:
			// leaving it would resurrect a deletion the caller was
			// already acknowledged for. If the subject genuinely still
			// exists (old shard glitched instead), the next sweep
			// re-scans and re-moves it.
			join.Remove(ctx, e.ID)
			stats.Conflicts++
			continue
		}
		moved++
	}
	stats.Moved += moved
	return moved, nil
}

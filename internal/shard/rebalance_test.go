package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fpinterop/internal/gallery"
)

// localStores returns the gallery stores behind a router built by
// localRouter (plus any Local added later).
func localStores(r *Router) []*gallery.Store {
	bs := r.Backends()
	out := make([]*gallery.Store, len(bs))
	for i, b := range bs {
		out[i] = b.(*Local).Store()
	}
	return out
}

func TestAddShardValidation(t *testing.T) {
	r := localRouter(t, 3, Options{})
	if _, err := r.AddShard(NewLocal("shard-1", gallery.New(nil))); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate name: err = %v", err)
	}
	rb, err := r.AddShard(NewLocal("shard-3", gallery.New(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddShard(NewLocal("shard-4", gallery.New(nil))); !errors.Is(err, ErrMigrationInProgress) {
		t.Fatalf("second migration: err = %v", err)
	}
	var buf bytes.Buffer
	if err := r.SaveTo(&buf); !errors.Is(err, ErrMigrationInProgress) {
		t.Fatalf("SaveTo during migration: err = %v", err)
	}
	if _, err := rb.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if r.Migrating() {
		t.Fatal("migration still flagged after cutover")
	}
	if _, err := rb.Run(ctx); err == nil {
		t.Fatal("completed rebalancer ran again")
	}
	if err := r.SaveTo(&buf); err != nil {
		t.Fatalf("SaveTo after cutover: %v", err)
	}
}

func TestRebalanceMovesOnlyRingMovedKeys(t *testing.T) {
	gal, _ := fixtures(t)
	const n = 120
	r := localRouter(t, 3, Options{})
	oldOwner := make(map[string]int, n)
	for i := 0; i < n; i++ {
		id := subjectID(i)
		oldOwner[id] = r.Owner(id)
		if err := r.Enroll(ctx, id, "D0", gal[i%len(gal)]); err != nil {
			t.Fatal(err)
		}
	}
	join := NewLocal("shard-3", gallery.New(nil))
	rb, err := r.AddShard(join)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != join.Store().Len() {
		t.Fatalf("stats.Moved = %d, joining shard holds %d", stats.Moved, join.Store().Len())
	}
	if stats.Moved == 0 {
		t.Fatal("no keys moved to the joining shard; fixture too small to exercise migration")
	}
	if total := r.Len(ctx); total != n {
		t.Fatalf("Len = %d after rebalance, want %d", total, n)
	}
	stores := localStores(r)
	for i := 0; i < n; i++ {
		id := subjectID(i)
		owner := r.Owner(id)
		copies := 0
		for _, s := range stores {
			if s.Has(id) {
				copies++
			}
		}
		if copies != 1 {
			t.Fatalf("%q has %d copies, want 1", id, copies)
		}
		if !stores[owner].Has(id) {
			t.Fatalf("%q not on its ring owner %d", id, owner)
		}
		if owner != 3 && owner != oldOwner[id] {
			t.Fatalf("%q moved between old shards (%d -> %d); only keys bound for the joining shard may move",
				id, oldOwner[id], owner)
		}
	}
}

// TestMigrationServingInvariants pins the dual-read/write behavior of a
// router frozen mid-migration (shard added, rebalancer not yet run, or
// a subject manually doubled to simulate a mid-flight move).
func TestMigrationServingInvariants(t *testing.T) {
	gal, probes := fixtures(t)
	const n = 24
	r := localRouter(t, 3, Options{})
	single := gallery.New(nil)
	for i := 0; i < n; i++ {
		id := subjectID(i)
		if err := r.Enroll(ctx, id, "D0", gal[i%len(gal)]); err != nil {
			t.Fatal(err)
		}
		if err := single.Enroll(id, "D0", gal[i%len(gal)]); err != nil {
			t.Fatal(err)
		}
	}
	join := NewLocal("shard-3", gallery.New(nil))
	rb, err := r.AddShard(join)
	if err != nil {
		t.Fatal(err)
	}

	// Every pre-migration subject still lives on an OLD shard, yet all
	// verifications and identifications must keep working.
	for i := 0; i < n; i++ {
		if _, err := r.Verify(ctx, subjectID(i), probes[i%len(probes)]); err != nil {
			t.Fatalf("verify %q mid-migration: %v", subjectID(i), err)
		}
	}
	// Duplicate enrollments must be caught even when ownership moved.
	for i := 0; i < n; i++ {
		err := r.Enroll(ctx, subjectID(i), "D0", gal[i%len(gal)])
		if !errors.Is(err, gallery.ErrDuplicate) {
			t.Fatalf("duplicate enroll %q mid-migration: err = %v, want ErrDuplicate", subjectID(i), err)
		}
	}
	// Simulate the rebalancer mid-move: one subject copied to the
	// joining shard, old copy not yet retired. Identification must
	// dedup it and stay bit-identical to the single store.
	doubled := ""
	for i := 0; i < n; i++ {
		id := subjectID(i)
		if rb.newRing.owner(id) == rb.joining {
			doubled = id
			if err := join.Store().Enroll(id, "D0", gal[i%len(gal)]); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if doubled == "" {
		t.Fatal("no subject moves to the joining shard; fixture too small")
	}
	for pi, probe := range probes {
		got, err := r.Identify(ctx, probe, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Identify(probe, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: %d candidates (doubled subject not deduped?), single store has %d",
				pi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("probe %d rank %d: sharded (%q, %v) vs single (%q, %v)",
					pi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
	// Removing the doubled subject must retire BOTH copies.
	if err := r.Remove(ctx, doubled); err != nil {
		t.Fatal(err)
	}
	for si, s := range localStores(r) {
		if s.Has(doubled) {
			t.Fatalf("removed subject %q still on shard %d", doubled, si)
		}
	}
	// And the rebalance still converges afterwards.
	if _, err := rb.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.Len(ctx); got != n-1 {
		t.Fatalf("Len = %d after cutover, want %d", got, n-1)
	}
}

// TestGrowFourToEightUnderLoad is the acceptance test for online
// resharding: a 4-shard router grows to 8 while enrollments, removals,
// verifications, and identifications hammer it from concurrent
// goroutines (run under -race in CI). Afterwards: zero lost
// enrollments, zero resurrected removals, every subject on exactly its
// ring owner, and identification rankings bit-identical to a single
// store over the same survivors.
func TestGrowFourToEightUnderLoad(t *testing.T) {
	gal, probes := fixtures(t)
	const base = 160 // enrolled before the migrations
	r := localRouter(t, 4, Options{})
	for i := 0; i < base; i++ {
		if err := r.Enroll(ctx, subjectID(i), "D0", gal[i%len(gal)]); err != nil {
			t.Fatal(err)
		}
	}

	var (
		mu       sync.Mutex
		enrolled = make(map[string]int) // id -> template index
		removed  = make(map[string]bool)
	)
	for i := 0; i < base; i++ {
		enrolled[subjectID(i)] = i % len(gal)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: keeps enrolling fresh subjects and removing a fraction of
	// the existing ones while shards join.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(1))
		next := base
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := subjectID(next)
			ti := next % len(gal)
			if err := r.Enroll(ctx, id, "D0", gal[ti]); err != nil {
				t.Errorf("enroll %q under load: %v", id, err)
				return
			}
			mu.Lock()
			enrolled[id] = ti
			mu.Unlock()
			next++
			if rnd.Intn(4) == 0 {
				victim := subjectID(rnd.Intn(next))
				mu.Lock()
				_, live := enrolled[victim]
				mu.Unlock()
				if live {
					if err := r.Remove(ctx, victim); err != nil {
						t.Errorf("remove %q under load: %v", victim, err)
						return
					}
					mu.Lock()
					delete(enrolled, victim)
					removed[victim] = true
					mu.Unlock()
				}
			}
		}
	}()
	// Readers: identification and verification race the migrations.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Identify(ctx, probes[rnd.Intn(len(probes))], 5); err != nil {
					t.Errorf("identify under load: %v", err)
					return
				}
				i := rnd.Intn(base)
				mu.Lock()
				_, live := enrolled[subjectID(i)]
				mu.Unlock()
				if live {
					// A racing remove can retire the subject between the
					// check and the verify; only systematic failures matter,
					// and those surface as lost enrollments below.
					r.Verify(ctx, subjectID(i), probes[i%len(probes)])
				}
			}
		}(int64(w))
	}

	// Grow 4 -> 8, one joining shard at a time, under the load above.
	for s := 4; s < 8; s++ {
		join := NewLocal(fmt.Sprintf("shard-%d", s), gallery.New(nil))
		rb, err := r.AddShard(join)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Run(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Zero lost enrollments, zero resurrections, exactly one copy each,
	// and every copy on its ring owner.
	stores := localStores(r)
	if len(stores) != 8 {
		t.Fatalf("router has %d shards, want 8", len(stores))
	}
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	if total != len(enrolled) {
		t.Fatalf("shards hold %d subjects, %d were acknowledged (lost or duplicated enrollments)",
			total, len(enrolled))
	}
	for id := range enrolled {
		owner := r.Owner(id)
		copies := 0
		for _, s := range stores {
			if s.Has(id) {
				copies++
			}
		}
		if copies != 1 || !stores[owner].Has(id) {
			t.Fatalf("%q: %d copies, on owner: %v", id, copies, stores[owner].Has(id))
		}
	}
	for id := range removed {
		for si, s := range stores {
			if s.Has(id) {
				t.Fatalf("removed subject %q resurrected on shard %d", id, si)
			}
		}
	}

	// Bit-identical rankings: a single store over the survivors must
	// produce exactly the sharded router's identification results.
	single := gallery.New(nil)
	for id, ti := range enrolled {
		if err := single.Enroll(id, "D0", gal[ti]); err != nil {
			t.Fatal(err)
		}
	}
	for pi, probe := range probes {
		got, err := r.Identify(ctx, probe, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Identify(probe, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: %d candidates vs single store's %d", pi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].DeviceID != want[i].DeviceID || got[i].Score != want[i].Score {
				t.Fatalf("probe %d rank %d: sharded (%q, %v) vs single (%q, %v)",
					pi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

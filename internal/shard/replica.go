package shard

import (
	"context"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// ReplicaReader is the optional Backend capability a replica set
// implements: one ring slot holds several copies of the same shard,
// and an identify attempt can be steered away from the member another
// attempt of the same search landed on. The router's hedged identify
// uses it so the hedge asks a *different* replica than the first
// attempt — a hedge that re-asks the same machine papers over a slow
// request, not a slow or dead machine.
type ReplicaReader interface {
	Backend
	// Replicas reports the member count, primary included.
	Replicas() int
	// IdentifyDetailedAvoiding is IdentifyDetailed with placement
	// control: the set serves the attempt from a healthy member other
	// than avoid whenever it has one (avoid < 0 means unconstrained).
	// When picked is non-nil, the member index chosen for the first
	// try is sent on it before the identify runs — the channel must be
	// buffered, the send never blocks — so a hedge racing this attempt
	// can exclude the member it landed on.
	IdentifyDetailedAvoiding(ctx context.Context, probe *minutiae.Template, k int, avoid int, picked chan<- int) ([]gallery.Candidate, gallery.IdentifyStats, error)
}

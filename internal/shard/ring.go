package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring: each shard contributes VirtualNodes
// points, and an enrollment ID is owned by the shard whose point is the
// first at or clockwise of the ID's hash. Virtual nodes smooth the
// per-shard load and bound the fraction of IDs that move when a shard
// is added or removed to roughly 1/len(shards).
type ring struct {
	points []ringPoint // sorted by (hash, shard)
}

type ringPoint struct {
	hash  uint64
	shard int // backend position
}

// hashKey is FNV-1a 64 through a splitmix64-style finalizer — stable
// across processes and Go versions, which persistence and remote
// routing both depend on. The finalizer matters: raw FNV-1a keeps
// sequential IDs ("subject-0001", "subject-0002", …) numerically
// adjacent, which collapses them onto the same ring arc and wrecks the
// shard balance.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func newRing(names []string, vnodes int) *ring {
	pts := make([]ringPoint, 0, len(names)*vnodes)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, v)), shard: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].shard < pts[b].shard
	})
	return &ring{points: pts}
}

// owner returns the backend position responsible for id.
func (r *ring) owner(id string) int {
	h := hashKey(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Package shard partitions the enrollment gallery across many backends
// — local stores or remote matchd instances — behind one router, so the
// central-matcher deployment the paper's discussion section describes
// can scale horizontally: enrollments spread over shards by consistent
// hashing on subject ID, and every 1:N identification scatter-gathers
// across the healthy shards and merges their shortlists into one global
// top-k with deterministic ordering. With exhaustive per-shard search
// the merged result is bit-identical to a single store holding the same
// enrollments; with per-shard retrieval indexes each shard prunes
// independently, which is the horizontal version of the index's
// recall/speed trade.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/obs"
)

var (
	// ErrNoBackends reports a router constructed without shards.
	ErrNoBackends = errors.New("shard: router needs at least one backend")
	// ErrDuplicateName reports two backends sharing a ring name.
	ErrDuplicateName = errors.New("shard: duplicate backend name")
	// ErrShardTimeout reports a shard that missed the per-shard deadline.
	ErrShardTimeout = errors.New("shard: shard deadline exceeded")
	// ErrDegraded reports an operation routed to a degraded shard (or,
	// under FailClosed, an identification attempted while any shard is
	// degraded).
	ErrDegraded = errors.New("shard: backend degraded")
)

// Policy selects how identification treats degraded shards.
type Policy int

const (
	// SkipDegraded serves identification from the healthy shards and
	// reports the reduced coverage in the stats (Partial = true). This
	// is the availability-first posture: a missing shard can only hide
	// mates enrolled on it.
	SkipDegraded Policy = iota
	// FailClosed refuses identification while any shard is degraded or
	// fails mid-search — the integrity-first posture for workloads where
	// a silently partial search is worse than an error.
	FailClosed
)

// Options tunes the router. The zero value gives production defaults.
type Options struct {
	// VirtualNodes is how many ring points each shard contributes
	// (default 64). More points smooth the key distribution at the cost
	// of a larger ring.
	VirtualNodes int
	// Workers bounds the goroutines fanning a search across shards
	// (default: one per shard).
	Workers int
	// ShardTimeout is the per-shard identification deadline; a shard
	// that misses it counts as failed for that search (and toward
	// degradation). 0 disables the deadline. On expiry the router stops
	// waiting and cancels the shard's context, so a context-honoring
	// backend unwinds promptly instead of running to completion.
	ShardTimeout time.Duration
	// FailureThreshold is how many consecutive failures mark a shard
	// degraded (default 3).
	FailureThreshold int
	// Policy selects the degraded-shard behavior (default SkipDegraded).
	Policy Policy
	// HedgeDelay enables hedged identification: a scatter leg still
	// unanswered after the delay is re-sent to the same shard (over a
	// different pooled connection when the backend is remote) and the
	// first answer wins, taming the tail a single slow replica inflicts
	// on every search. The delay adapts per shard to the observed p95
	// identify latency once enough history accumulates (Registry must be
	// set for that); until then — or without a Registry — HedgeDelay
	// itself is the static delay. 0 (the default) disables hedging.
	// Exactly one attempt's answer is used, so results are bit-identical
	// to the unhedged path.
	HedgeDelay time.Duration
	// Registry, when non-nil, receives the router's metric families:
	// per-shard identify latency and health gauges plus scatter fanout
	// and partial-coverage counters. A nil registry costs one branch per
	// operation.
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	return o
}

// health tracks one backend's consecutive-failure state. It also
// anchors the shard's metric handles (nil on an unmetered router):
// request paths already snapshot the health slice, so the handles
// inherit its replaced-on-write lifecycle.
type health struct {
	mu          sync.Mutex
	consecFails int
	degraded    bool
	met         *shardMetrics
}

// Router partitions enrollments across backends by consistent hashing
// on enrollment ID and scatter-gathers identification across them. It
// is safe for concurrent use, and its topology can grow online:
// AddShard registers a joining backend and a Rebalancer streams the
// ring-moved subjects over while the router keeps serving (see
// rebalance.go).
type Router struct {
	opt Options

	// mu guards the topology below. All four fields are
	// replaced-on-write (never mutated in place), so request paths take
	// one brief read-lock to snapshot them and then work lock-free; no
	// backend call ever runs under mu.
	mu       sync.RWMutex
	backends []Backend
	ring     *ring
	health   []*health
	mig      *migration

	// met is non-nil when Options.Registry was set.
	met *routerMetrics

	// scratch recycles per-identification fan-out state (answer slots
	// and target lists) across searches; the per-worker matcher scratch
	// itself lives in each local shard's gallery sessions.
	scratch sync.Pool
}

// migration is the state of one in-progress resharding. While it is
// non-nil, writes route by the NEW ring (so they land directly on their
// final owner and the backlog only drains), single-key reads consult
// both the old and new owner of mid-flight keys, and identification
// scatters over every backend including the joining one, deduplicating
// subjects the move has briefly doubled. Cutover installs newRing as
// the router's ring and clears the migration.
type migration struct {
	// joining is the index of the backend being filled.
	joining int
	// newRing spans the old shard names plus the joining one.
	newRing *ring
}

// topo is one consistent snapshot of the router's topology, taken at
// the top of each request so a concurrent AddShard or cutover cannot
// shift routing mid-operation.
type topo struct {
	backends []Backend
	ring     *ring
	health   []*health
	mig      *migration
}

func (r *Router) topo() topo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return topo{backends: r.backends, ring: r.ring, health: r.health, mig: r.mig}
}

// writeOwner is the shard index a mutation of id targets: the new
// ring's owner during a migration (so moves only ever drain), the
// current ring's otherwise.
func (t topo) writeOwner(id string) int {
	if t.mig != nil {
		return t.mig.newRing.owner(id)
	}
	return t.ring.owner(id)
}

// identifyScratch is the reusable fan-out state of one identification.
type identifyScratch struct {
	answers []shardAnswer
	targets []int
}

// New builds a router over the given backends. Backend names must be
// unique; ring placement depends only on the names, so a router rebuilt
// over the same names routes identically.
func New(backends []Backend, opt Options) (*Router, error) {
	if len(backends) == 0 {
		return nil, ErrNoBackends
	}
	opt = opt.withDefaults()
	names := make([]string, len(backends))
	seen := make(map[string]bool, len(backends))
	for i, b := range backends {
		n := b.Name()
		if seen[n] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, n)
		}
		seen[n] = true
		names[i] = n
	}
	hs := make([]*health, len(backends))
	for i := range hs {
		hs[i] = &health{met: newShardMetrics(opt.Registry, names[i])}
	}
	return &Router{
		backends: backends,
		ring:     newRing(names, opt.VirtualNodes),
		opt:      opt,
		health:   hs,
		met:      newRouterMetrics(opt.Registry),
	}, nil
}

// Backends returns the shard list in ring-construction order (a
// joining shard appears at the tail while its migration runs).
func (r *Router) Backends() []Backend { return r.topo().backends }

// Owner returns the position of the shard owning id. During a
// migration this is the position writes target — the joining shard for
// keys the new ring moves to it.
func (r *Router) Owner(id string) int { return r.topo().writeOwner(id) }

// Migrating reports whether an online resharding is in progress.
func (r *Router) Migrating() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mig != nil
}

// record updates a shard's health after one backend call. A failure
// caused by the caller's own context — cancellation or an expired
// caller deadline — says nothing about the shard, so it neither counts
// toward degradation nor resets the failure streak (recordCtx filters
// those out before delegating here).
func (r *Router) record(h *health, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.consecFails = 0
		if h.degraded {
			h.degraded = false
			if h.met != nil {
				h.met.readmits.Inc()
				h.met.degraded.Set(0)
			}
		}
		return
	}
	h.consecFails++
	if h.consecFails >= r.opt.FailureThreshold && !h.degraded {
		h.degraded = true
		if h.met != nil {
			h.met.degrades.Inc()
			h.met.degraded.Set(1)
		}
	}
}

// recordCtx is record unless the failure is the caller's context
// error.
func (r *Router) recordCtx(ctx context.Context, h *health, err error) {
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return
	}
	r.record(h, err)
}

func isDegraded(h *health) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// Degraded returns the positions of currently degraded shards.
func (r *Router) Degraded() []int {
	t := r.topo()
	var out []int
	for i := range t.backends {
		if isDegraded(t.health[i]) {
			out = append(out, i)
		}
	}
	return out
}

// CheckHealth probes every shard (a Len round trip) and resets the
// health of responsive ones, letting degraded shards rejoin the
// scatter set; errs[i] is non-nil for shards that failed the probe.
// Call it periodically, or after repairing a shard. A cancelled
// context aborts the sweep; unprobed shards report ctx.Err() without a
// health penalty.
func (r *Router) CheckHealth(ctx context.Context) (errs []error) {
	t := r.topo()
	errs = make([]error, len(t.backends))
	for i, b := range t.backends {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		_, err := b.Len(ctx)
		r.recordCtx(ctx, t.health[i], err)
		errs[i] = err
	}
	return errs
}

// routingErr decorates shard-call failures with the shard name.
func routingErr(b Backend, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("shard %q: %w", b.Name(), err)
}

// Enroll routes the template to the shard owning id. Enrollment always
// targets the owner — there is no failover, because a mis-placed
// enrollment would be invisible to Remove/Verify routing. During a
// migration the target is the NEW ring's owner (the subject's final
// home), with a duplicate guard against the outgoing owner for keys
// whose authoritative copy has not moved yet.
func (r *Router) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	t := r.topo()
	wi := t.writeOwner(id)
	if t.mig != nil {
		if oi := t.ring.owner(id); oi != wi {
			ok, err := t.backends[oi].Has(ctx, id)
			r.recordCtx(ctx, t.health[oi], err)
			if err != nil {
				return routingErr(t.backends[oi], err)
			}
			if ok {
				return routingErr(t.backends[oi], fmt.Errorf("enroll %q: %w", id, gallery.ErrDuplicate))
			}
		}
	}
	err := t.backends[wi].Enroll(ctx, id, deviceID, tpl)
	r.recordCtx(ctx, t.health[wi], err)
	return routingErr(t.backends[wi], err)
}

// EnrollBatch groups the items by owning shard and ships each group in
// one backend batch (one round trip per shard for remote backends, up
// to frame-cap chunking), fanning the per-shard batches out in
// parallel. Not atomic: a shard failure leaves that shard's prefix (and
// every other shard's full group) enrolled.
func (r *Router) EnrollBatch(ctx context.Context, items []Enrollment) error {
	if len(items) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := r.topo()
	groups := make([][]Enrollment, len(t.backends))
	for _, it := range items {
		i := t.writeOwner(it.ID)
		groups[i] = append(groups[i], it)
	}
	workers := r.fanout(len(t.backends))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(groups) {
					return
				}
				if len(groups[i]) == 0 {
					continue
				}
				err := t.backends[i].EnrollBatch(ctx, groups[i])
				r.recordCtx(ctx, t.health[i], err)
				if err != nil {
					mu.Lock()
					errs = append(errs, routingErr(t.backends[i], err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// Remove routes the deletion to the shard owning id. During a
// migration a subject may live on its old owner, its new owner, or —
// while the rebalancer is mid-move — briefly both, so the removal hits
// every copy it can find; leaving one behind would resurrect the
// subject when the move completes.
func (r *Router) Remove(ctx context.Context, id string) error {
	t := r.topo()
	ni := t.writeOwner(id)
	oi := ni
	if t.mig != nil {
		oi = t.ring.owner(id)
	}
	if ni == oi {
		err := t.backends[ni].Remove(ctx, id)
		r.recordCtx(ctx, t.health[ni], err)
		return routingErr(t.backends[ni], err)
	}
	removed := false
	var firstErr error
	for _, i := range [2]int{ni, oi} {
		ok, err := t.backends[i].Has(ctx, id)
		r.recordCtx(ctx, t.health[i], err)
		if err != nil {
			if firstErr == nil {
				firstErr = routingErr(t.backends[i], err)
			}
			continue
		}
		if !ok {
			continue
		}
		err = t.backends[i].Remove(ctx, id)
		r.recordCtx(ctx, t.health[i], err)
		if err != nil {
			if firstErr == nil {
				firstErr = routingErr(t.backends[i], err)
			}
			continue
		}
		removed = true
	}
	if removed {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	// Neither owner holds it: surface the canonical not-found error
	// from the shard a non-migrating router would have asked.
	err := t.backends[ni].Remove(ctx, id)
	r.recordCtx(ctx, t.health[ni], err)
	return routingErr(t.backends[ni], err)
}

// Verify routes the 1:1 comparison to the shard owning id. During a
// migration the read is directed at whichever owner holds the subject
// (new owner preferred); if the chosen shard fails — including the
// race where the rebalancer moves the subject between the Has probe
// and the comparison — the other owner is tried before giving up.
func (r *Router) Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	t := r.topo()
	ni := t.writeOwner(id)
	oi := ni
	if t.mig != nil {
		oi = t.ring.owner(id)
	}
	target := ni
	if ni != oi {
		ok, err := t.backends[ni].Has(ctx, id)
		r.recordCtx(ctx, t.health[ni], err)
		if err != nil || !ok {
			target = oi
		}
	}
	res, err := t.backends[target].Verify(ctx, id, probe)
	r.recordCtx(ctx, t.health[target], err)
	if err != nil && ni != oi && ctx.Err() == nil {
		other := ni
		if target == ni {
			other = oi
		}
		res2, err2 := t.backends[other].Verify(ctx, id, probe)
		r.recordCtx(ctx, t.health[other], err2)
		if err2 == nil {
			return res2, nil
		}
	}
	return res, routingErr(t.backends[target], err)
}

// Len sums the enrollment counts of the reachable shards (unreachable
// shards contribute zero). During a migration, subjects the rebalancer
// is mid-move can be counted on both owners.
func (r *Router) Len(ctx context.Context) int {
	t := r.topo()
	total := 0
	for i, b := range t.backends {
		n, err := b.Len(ctx)
		r.recordCtx(ctx, t.health[i], err)
		if err == nil {
			total += n
		}
	}
	return total
}

// ShardIdentifyStats is one shard's contribution to a search.
type ShardIdentifyStats struct {
	// Shard is the backend name.
	Shard string
	// Stats is the shard-local retrieval detail (zero when the shard was
	// skipped or failed).
	Stats gallery.IdentifyStats
	// Skipped reports a degraded shard that was not queried.
	Skipped bool
	// Err is the failure message when the query errored or timed out.
	Err string
}

// IdentifyStats aggregates a scatter-gather search.
type IdentifyStats struct {
	// GallerySize, Shortlist, and Scanned are summed over the shards
	// that answered.
	GallerySize int
	Shortlist   int
	Scanned     int
	// IndexedShards and FallbackShards count how many answering shards
	// served from their retrieval index vs an exhaustive scan.
	IndexedShards  int
	FallbackShards int
	// ShardsQueried, ShardsSkipped, and ShardsFailed partition the
	// shard set for this search.
	ShardsQueried int
	ShardsSkipped int
	ShardsFailed  int
	// Partial reports incomplete coverage: at least one shard was
	// skipped or failed, so a mate enrolled there could be missing.
	Partial bool
	// PerShard holds every shard's detail in backend order.
	PerShard []ShardIdentifyStats
}

// shardAnswer carries one shard's identification result to the merge.
type shardAnswer struct {
	cands []gallery.Candidate
	stats gallery.IdentifyStats
	err   error
}

// fanout bounds the scatter worker count.
func (r *Router) fanout(n int) int {
	w := r.opt.Workers
	if w <= 0 || w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// callIdentify runs one shard search under the per-shard deadline and
// the caller's context. When neither can fire, the backend is called
// synchronously. Otherwise the call runs in its own goroutine so the
// router can stop waiting the moment the shard deadline or the caller's
// context expires: a missed shard deadline reports ErrShardTimeout, a
// done caller context reports ctx.Err(). Either way the shard's derived
// context is cancelled, so a context-honoring backend unwinds promptly
// (the abandoning goroutine drains into a buffered channel regardless).
func (r *Router) callIdentify(ctx context.Context, b Backend, probe *minutiae.Template, k int) shardAnswer {
	return r.callIdentifyOn(ctx, b, probe, k, -1, nil)
}

// callIdentifyOn is callIdentify with replica placement: when the
// backend is a ReplicaReader the attempt avoids the given member
// (avoid < 0 means unconstrained) and reports its landing member on
// picked. Plain backends have one machine behind them — avoid and
// picked are meaningless and ignored.
func (r *Router) callIdentifyOn(ctx context.Context, b Backend, probe *minutiae.Template, k int, avoid int, picked chan<- int) shardAnswer {
	sctx := ctx
	if r.opt.ShardTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, r.opt.ShardTimeout)
		defer cancel()
	}
	call := func(cctx context.Context) shardAnswer {
		if rr, ok := b.(ReplicaReader); ok {
			cands, stats, err := rr.IdentifyDetailedAvoiding(cctx, probe, k, avoid, picked)
			return shardAnswer{cands: cands, stats: stats, err: err}
		}
		cands, stats, err := b.IdentifyDetailed(cctx, probe, k)
		return shardAnswer{cands: cands, stats: stats, err: err}
	}
	if sctx.Done() == nil {
		return call(sctx)
	}
	ch := make(chan shardAnswer, 1)
	go func() {
		ch <- call(sctx)
	}()
	select {
	case ans := <-ch:
		return ans
	case <-sctx.Done():
		if err := ctx.Err(); err != nil {
			return shardAnswer{err: err}
		}
		return shardAnswer{err: ErrShardTimeout}
	}
}

// hedgeMinSamples is how much latency history a shard needs before its
// hedge delay adapts to the observed p95 instead of the static option.
const hedgeMinSamples = 32

// hedgeDelay returns the delay before re-sending a scatter leg to this
// shard; 0 means hedging is off.
func (r *Router) hedgeDelay(h *health) time.Duration {
	if r.opt.HedgeDelay <= 0 {
		return 0
	}
	if h != nil && h.met != nil && h.met.lat.Count() >= hedgeMinSamples {
		if p95 := h.met.lat.Quantile(0.95); p95 > 0 {
			return time.Duration(p95)
		}
	}
	return r.opt.HedgeDelay
}

// callIdentifyHedged is callIdentify with tail hedging: if the primary
// attempt is still unanswered after the shard's hedge delay, a second
// identical attempt races it and the first success wins. The loser is
// cancelled and its answer discarded — exactly one attempt's result is
// used, so the output is bit-identical to the unhedged path. A failure
// before the hedge fires returns immediately (retrying errors is the
// client retry policy's job, not the hedger's); once both attempts are
// in flight, one failure waits for the other attempt, and only two
// failures fail the leg (preferring the primary's error).
//
// When the slot is a replica set, the hedge is steered away from the
// member the primary attempt landed on: the set reports its pick on a
// buffered channel at dispatch time — before the (potentially slow)
// identify runs — so by the time the hedge delay has elapsed the
// member to avoid is known without waiting for the stuck attempt.
func (r *Router) callIdentifyHedged(ctx context.Context, b Backend, h *health, probe *minutiae.Template, k int) shardAnswer {
	delay := r.hedgeDelay(h)
	if delay <= 0 {
		return r.callIdentify(ctx, b, probe, k)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		ans    shardAnswer
		hedged bool
	}
	ch := make(chan attempt, 2)
	picked := make(chan int, 1)
	launch := func(hedged bool, avoid int, report chan<- int) {
		go func() {
			ch <- attempt{ans: r.callIdentifyOn(actx, b, probe, k, avoid, report), hedged: hedged}
		}()
	}
	launch(false, -1, picked)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedgeFired := false
	var primErr, hedgeErr *shardAnswer
	for {
		select {
		case <-timer.C:
			if !hedgeFired {
				hedgeFired = true
				if r.met != nil {
					r.met.hedgesFired.Inc()
				}
				avoid := -1
				select {
				case avoid = <-picked:
				default:
					// The primary attempt has not even dispatched (or the
					// backend has no replicas); hedge unconstrained.
				}
				launch(true, avoid, nil)
			}
		case a := <-ch:
			if a.ans.err == nil {
				if r.met != nil && hedgeFired {
					if a.hedged {
						r.met.hedgesWon.Inc()
					} else {
						r.met.hedgesWasted.Inc()
					}
				}
				return a.ans
			}
			ans := a.ans
			if a.hedged {
				hedgeErr = &ans
			} else {
				primErr = &ans
			}
			if !hedgeFired {
				return *primErr
			}
			if primErr != nil && hedgeErr != nil {
				return *primErr
			}
		}
	}
}

// Identify scatter-gathers the probe across the shards and returns the
// global top-k candidates (all of them when k <= 0), ordered by
// descending score with deterministic ID tie-breaks.
func (r *Router) Identify(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, error) {
	out, _, err := r.IdentifyDetailed(ctx, probe, k)
	return out, err
}

// IdentifyDetailed is Identify plus per-shard and aggregate statistics.
// Each shard is asked for its local top-k; merging the per-shard
// shortlists yields the same result a single store would produce,
// because any candidate in the global top-k is necessarily in its own
// shard's top-k. Under SkipDegraded, failed or skipped shards reduce
// coverage (stats.Partial); under FailClosed they fail the search.
//
// A cancelled or expired ctx unblocks the scatter promptly — in-flight
// shard calls are cancelled and abandoned — and the search returns
// ctx.Err() without penalizing any shard's health. The router remains
// reusable for subsequent searches.
func (r *Router) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, IdentifyStats, error) {
	if probe == nil {
		return nil, IdentifyStats{}, match.ErrNilTemplate
	}
	if err := ctx.Err(); err != nil {
		return nil, IdentifyStats{}, err
	}
	if k < 0 {
		// The same full-ranking normalization gallery.Store applies, so
		// degenerate k means one thing on every serving path (and never
		// reaches the wire, where k travels unsigned).
		k = 0
	}
	t := r.topo()
	n := len(t.backends)
	stats := IdentifyStats{PerShard: make([]ShardIdentifyStats, n)}
	sc, _ := r.scratch.Get().(*identifyScratch)
	if sc == nil {
		sc = &identifyScratch{}
	}
	if cap(sc.answers) < n {
		sc.answers = make([]shardAnswer, n)
	}
	defer func() {
		// Drop candidate references before pooling so a recycled scratch
		// cannot pin a previous search's shortlists in memory.
		clear(sc.answers[:cap(sc.answers)])
		sc.targets = sc.targets[:0]
		r.scratch.Put(sc)
	}()
	targets := sc.targets[:0]
	for i := range t.backends {
		stats.PerShard[i].Shard = t.backends[i].Name()
		if isDegraded(t.health[i]) {
			if r.opt.Policy == FailClosed {
				return nil, stats, fmt.Errorf("shard %q: %w", t.backends[i].Name(), ErrDegraded)
			}
			stats.PerShard[i].Skipped = true
			stats.ShardsSkipped++
			stats.Partial = true
			continue
		}
		targets = append(targets, i)
	}
	sc.targets = targets

	answers := sc.answers[:n]
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	workers := r.fanout(len(targets))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				ti := next
				next++
				mu.Unlock()
				if ti >= len(targets) {
					return
				}
				i := targets[ti]
				var t0 time.Time
				if t.health[i].met != nil {
					t0 = time.Now()
				}
				answers[i] = r.callIdentifyHedged(ctx, t.backends[i], t.health[i], probe, k)
				if m := t.health[i].met; m != nil {
					m.lat.ObserveSince(t0)
				}
				r.recordCtx(ctx, t.health[i], answers[i].err)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	var merged []gallery.Candidate
	for _, i := range targets {
		ans := answers[i]
		stats.ShardsQueried++
		if ans.err != nil {
			stats.PerShard[i].Err = ans.err.Error()
			stats.ShardsFailed++
			stats.Partial = true
			if r.opt.Policy == FailClosed {
				return nil, stats, fmt.Errorf("shard %q: %w", t.backends[i].Name(), ans.err)
			}
			continue
		}
		stats.PerShard[i].Stats = ans.stats
		stats.GallerySize += ans.stats.GallerySize
		stats.Shortlist += ans.stats.Shortlist
		stats.Scanned += ans.stats.Scanned
		if ans.stats.Indexed {
			stats.IndexedShards++
		} else {
			stats.FallbackShards++
		}
		merged = append(merged, ans.cands...)
	}
	if r.met != nil {
		r.met.searches.Inc()
		r.met.fanout.Observe(int64(len(targets)))
		if stats.Partial {
			r.met.partial.Inc()
		}
	}
	if stats.ShardsQueried == stats.ShardsFailed && stats.ShardsFailed > 0 {
		// Every queried shard failed: that is an outage, not an empty
		// gallery.
		return nil, stats, fmt.Errorf("shard: all %d queried shards failed", stats.ShardsFailed)
	}

	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Score != merged[b].Score {
			return merged[a].Score > merged[b].Score
		}
		return merged[a].ID < merged[b].ID
	})
	if t.mig != nil && len(merged) > 1 {
		// A subject mid-move exists on both its old and new owner with
		// an identical template, so two shards can report it with the
		// same score. Keep the best-ranked copy of each ID; the result
		// then matches what a single store over the same subjects would
		// return.
		seen := make(map[string]bool, len(merged))
		dedup := merged[:0]
		for _, c := range merged {
			if seen[c.ID] {
				continue
			}
			seen[c.ID] = true
			dedup = append(dedup, c)
		}
		merged = dedup
	}
	if k > 0 && k < len(merged) {
		merged = merged[:k]
	}
	if merged == nil {
		merged = []gallery.Candidate{}
	}
	return merged, stats, nil
}

package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// Captured templates are the expensive fixture; build one shared set.
var (
	tplOnce   sync.Once
	tplGal    []*minutiae.Template // D0 sample 0
	tplProbes []*minutiae.Template // D1 sample 1 (cross-device probes)
	tplErr    error
)

const tplCount = 24

// ctx is the background context shared by tests that exercise no
// cancellation behavior of their own.
var ctx = context.Background()

func fixtures(t *testing.T) (gal, probes []*minutiae.Template) {
	t.Helper()
	tplOnce.Do(func() {
		cohort := population.NewCohort(rng.New(20130624), population.CohortOptions{Size: tplCount})
		d0, _ := sensor.ProfileByID("D0")
		d1, _ := sensor.ProfileByID("D1")
		for _, s := range cohort.Subjects {
			g, err := d0.CaptureSubject(s, 0, sensor.CaptureOptions{})
			if err != nil {
				tplErr = err
				return
			}
			p, err := d1.CaptureSubject(s, 1, sensor.CaptureOptions{})
			if err != nil {
				tplErr = err
				return
			}
			tplGal = append(tplGal, g.Template)
			tplProbes = append(tplProbes, p.Template)
		}
	})
	if tplErr != nil {
		t.Fatal(tplErr)
	}
	return tplGal, tplProbes
}

func subjectID(i int) string { return fmt.Sprintf("subject-%04d", i) }

// localRouter builds a router over n fresh local shards.
func localRouter(t *testing.T, n int, opt Options) *Router {
	t.Helper()
	backends := make([]Backend, n)
	for i := range backends {
		backends[i] = NewLocal(fmt.Sprintf("shard-%d", i), gallery.New(nil))
	}
	r, err := New(backends, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r1 := newRing(names, 64)
	r2 := newRing(names, 64)
	counts := make([]int, len(names))
	for i := 0; i < 10000; i++ {
		id := subjectID(i)
		o1, o2 := r1.owner(id), r2.owner(id)
		if o1 != o2 {
			t.Fatalf("ring not deterministic for %q: %d vs %d", id, o1, o2)
		}
		counts[o1]++
	}
	for i, c := range counts {
		if c < 10000/len(names)/4 {
			t.Fatalf("shard %d owns only %d of 10000 keys: %v", i, c, counts)
		}
	}
}

func TestRingBoundedMovementOnShardAdd(t *testing.T) {
	before := newRing([]string{"a", "b", "c", "d"}, 64)
	after := newRing([]string{"a", "b", "c", "d", "e"}, 64)
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		id := subjectID(i)
		if before.owner(id) != after.owner(id) {
			moved++
		}
	}
	// Ideal movement is 1/5 of the keys; allow generous slack for hash
	// variance, but far below the ~4/5 a modulo partition would move.
	if frac := float64(moved) / keys; frac > 0.4 {
		t.Fatalf("adding one shard moved %.0f%% of keys", 100*frac)
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := New(nil, Options{}); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("want ErrNoBackends, got %v", err)
	}
	dup := []Backend{
		NewLocal("x", gallery.New(nil)),
		NewLocal("x", gallery.New(nil)),
	}
	if _, err := New(dup, Options{}); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("want ErrDuplicateName, got %v", err)
	}
}

func TestEnrollRoutesToOwner(t *testing.T) {
	gal, _ := fixtures(t)
	r := localRouter(t, 3, Options{})
	for i, tpl := range gal {
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len(ctx) != len(gal) {
		t.Fatalf("router Len = %d, want %d", r.Len(ctx), len(gal))
	}
	for i := range gal {
		id := subjectID(i)
		owner := r.Owner(id)
		for s, b := range r.Backends() {
			_, err := b.Verify(ctx, id, gal[i])
			if s == owner && err != nil {
				t.Fatalf("owner shard %d missing %q: %v", s, id, err)
			}
			if s != owner && err == nil {
				t.Fatalf("%q found on non-owner shard %d", id, s)
			}
		}
	}
}

func TestEnrollBatchMatchesIndividualPlacement(t *testing.T) {
	gal, _ := fixtures(t)
	one := localRouter(t, 3, Options{})
	batch := localRouter(t, 3, Options{})
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		if err := one.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
		items[i] = Enrollment{ID: subjectID(i), DeviceID: "D0", Template: tpl}
	}
	if err := batch.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	for s := range one.Backends() {
		a, _ := one.Backends()[s].Len(ctx)
		b, _ := batch.Backends()[s].Len(ctx)
		if a != b {
			t.Fatalf("shard %d: Enroll placed %d, EnrollBatch placed %d", s, a, b)
		}
	}
}

// TestShardedIdentifyBitIdenticalToSingleStore is the core contract:
// with exhaustive per-shard search, the merged global top-k (IDs,
// scores, order) must equal a single store holding the same
// enrollments.
func TestShardedIdentifyBitIdenticalToSingleStore(t *testing.T) {
	gal, probes := fixtures(t)
	single := gallery.New(nil)
	for i, tpl := range gal {
		if err := single.Enroll(subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	for _, shards := range []int{1, 2, 4, 7} {
		r := localRouter(t, shards, Options{})
		items := make([]Enrollment, len(gal))
		for i, tpl := range gal {
			items[i] = Enrollment{ID: subjectID(i), DeviceID: "D0", Template: tpl}
		}
		if err := r.EnrollBatch(ctx, items); err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5, 0, len(gal) + 10} {
			for pi, probe := range probes[:6] {
				want, err := single.Identify(probe, k)
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := r.IdentifyDetailed(ctx, probe, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d k=%d probe=%d: %d candidates, want %d",
						shards, k, pi, len(got), len(want))
				}
				for c := range want {
					if got[c] != want[c] {
						t.Fatalf("shards=%d k=%d probe=%d: candidate %d = %+v, want %+v",
							shards, k, pi, c, got[c], want[c])
					}
				}
				if stats.GallerySize != len(gal) {
					t.Fatalf("aggregate gallery size %d, want %d", stats.GallerySize, len(gal))
				}
				if stats.ShardsQueried != shards || stats.Partial {
					t.Fatalf("implausible stats: %+v", stats)
				}
			}
		}
	}
}

func TestIdentifyStatsAggregation(t *testing.T) {
	gal, probes := fixtures(t)
	r := localRouter(t, 4, Options{})
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: subjectID(i), DeviceID: "D0", Template: tpl}
	}
	if err := r.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	_, stats, err := r.IdentifyDetailed(ctx, probes[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerShard) != 4 {
		t.Fatalf("per-shard stats for %d shards", len(stats.PerShard))
	}
	sum := 0
	for i, ps := range stats.PerShard {
		if ps.Shard == "" || ps.Skipped || ps.Err != "" {
			t.Fatalf("shard %d unexpectedly unhealthy: %+v", i, ps)
		}
		sum += ps.Stats.GallerySize
	}
	if sum != stats.GallerySize || sum != len(gal) {
		t.Fatalf("per-shard sizes sum to %d, aggregate %d, want %d", sum, stats.GallerySize, len(gal))
	}
	// Exhaustive stores: every answering shard is a fallback, none indexed.
	if stats.IndexedShards != 0 || stats.FallbackShards != 4 {
		t.Fatalf("index accounting wrong: %+v", stats)
	}
	if stats.Scanned != len(gal) {
		t.Fatalf("scanned %d, want full coverage %d", stats.Scanned, len(gal))
	}
}

// flakyBackend wraps a Backend and fails identification on demand.
type flakyBackend struct {
	Backend
	mu   sync.Mutex
	fail bool
	slow time.Duration
}

func (f *flakyBackend) setFail(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = v
}

func (f *flakyBackend) broken() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail
}

func (f *flakyBackend) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	f.mu.Lock()
	slow := f.slow
	f.mu.Unlock()
	if slow > 0 {
		select {
		case <-time.After(slow):
		case <-ctx.Done():
			return nil, gallery.IdentifyStats{}, ctx.Err()
		}
	}
	if f.broken() {
		return nil, gallery.IdentifyStats{}, errors.New("injected failure")
	}
	return f.Backend.IdentifyDetailed(ctx, probe, k)
}

func (f *flakyBackend) Len(ctx context.Context) (int, error) {
	if f.broken() {
		return 0, errors.New("injected failure")
	}
	return f.Backend.Len(ctx)
}

func TestHealthDegradationSkipAndRecovery(t *testing.T) {
	gal, probes := fixtures(t)
	flaky := &flakyBackend{Backend: NewLocal("flaky", gallery.New(nil))}
	backends := []Backend{NewLocal("ok", gallery.New(nil)), flaky}
	r, err := New(backends, Options{FailureThreshold: 2, Policy: SkipDegraded})
	if err != nil {
		t.Fatal(err)
	}
	for i, tpl := range gal {
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	flaky.setFail(true)
	// Below the threshold the shard is still queried; each failure is
	// partial coverage, and after two consecutive failures it degrades.
	for attempt := 0; attempt < 2; attempt++ {
		_, stats, err := r.IdentifyDetailed(ctx, probes[0], 3)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ShardsFailed != 1 || !stats.Partial {
			t.Fatalf("attempt %d: %+v", attempt, stats)
		}
	}
	if got := r.Degraded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("degraded = %v, want [1]", got)
	}
	// Degraded: skipped, not queried.
	_, stats, err := r.IdentifyDetailed(ctx, probes[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsSkipped != 1 || stats.ShardsFailed != 0 || !stats.Partial {
		t.Fatalf("degraded shard not skipped: %+v", stats)
	}
	if !stats.PerShard[1].Skipped {
		t.Fatalf("per-shard flag missing: %+v", stats.PerShard[1])
	}

	// Repair and re-probe: CheckHealth readmits the shard.
	flaky.setFail(false)
	errs := r.CheckHealth(ctx)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("health probe after repair: %v", errs)
	}
	if got := r.Degraded(); len(got) != 0 {
		t.Fatalf("still degraded after repair: %v", got)
	}
	_, stats, err = r.IdentifyDetailed(ctx, probes[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsQueried != 2 || stats.Partial {
		t.Fatalf("recovered shard not queried: %+v", stats)
	}
}

func TestFailClosedPolicy(t *testing.T) {
	gal, probes := fixtures(t)
	flaky := &flakyBackend{Backend: NewLocal("flaky", gallery.New(nil))}
	backends := []Backend{NewLocal("ok", gallery.New(nil)), flaky}
	r, err := New(backends, Options{FailureThreshold: 1, Policy: FailClosed})
	if err != nil {
		t.Fatal(err)
	}
	for i, tpl := range gal[:8] {
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	flaky.setFail(true)
	// First search: the shard fails mid-search → the search fails.
	if _, _, err := r.IdentifyDetailed(ctx, probes[0], 3); err == nil {
		t.Fatal("fail-closed search succeeded with a failing shard")
	}
	// The failure degraded the shard → subsequent searches fail fast.
	if _, _, err := r.IdentifyDetailed(ctx, probes[0], 3); !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
}

func TestShardTimeout(t *testing.T) {
	gal, probes := fixtures(t)
	slow := &flakyBackend{Backend: NewLocal("slow", gallery.New(nil)), slow: 300 * time.Millisecond}
	backends := []Backend{NewLocal("fast", gallery.New(nil)), slow}
	r, err := New(backends, Options{ShardTimeout: 30 * time.Millisecond, Policy: SkipDegraded})
	if err != nil {
		t.Fatal(err)
	}
	for i, tpl := range gal[:8] {
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	_, stats, err := r.IdentifyDetailed(ctx, probes[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsFailed != 1 || !stats.Partial {
		t.Fatalf("slow shard not timed out: %+v", stats)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("search waited %v for the slow shard", elapsed)
	}
}

func TestAllShardsFailedIsAnError(t *testing.T) {
	_, probes := fixtures(t)
	flaky := &flakyBackend{Backend: NewLocal("only", gallery.New(nil))}
	r, err := New([]Backend{flaky}, Options{FailureThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	flaky.setFail(true)
	if _, _, err := r.IdentifyDetailed(ctx, probes[0], 1); err == nil {
		t.Fatal("total outage reported as an empty result")
	}
}

func TestVerifyAndRemoveRouting(t *testing.T) {
	gal, probes := fixtures(t)
	r := localRouter(t, 3, Options{})
	for i, tpl := range gal[:6] {
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Verify(ctx, subjectID(2), probes[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("genuine verify score %v", res.Score)
	}
	if _, err := r.Verify(ctx, "nobody", probes[0]); err == nil {
		t.Fatal("verify of unknown ID succeeded")
	}
	if err := r.Remove(ctx, subjectID(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(ctx, subjectID(2)); err == nil {
		t.Fatal("double remove succeeded")
	}
	if r.Len(ctx) != 5 {
		t.Fatalf("Len after remove = %d", r.Len(ctx))
	}
}

func TestRouterPersistenceRoundTrip(t *testing.T) {
	gal, probes := fixtures(t)
	mk := func() *Router {
		backends := make([]Backend, 3)
		for i := range backends {
			store := gallery.New(nil)
			if err := store.EnableIndex(gallery.IndexOptions{MinCandidates: 1}); err != nil {
				t.Fatal(err)
			}
			backends[i] = NewLocal(fmt.Sprintf("shard-%d", i), store)
		}
		r, err := New(backends, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	orig := mk()
	// Normalize fixtures through the codec first: SaveTo/LoadFrom
	// quantizes minutiae, so only codec-normalized templates make the
	// pre-save and post-load routers byte-comparable.
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		data, err := minutiae.Marshal(tpl)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := minutiae.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = Enrollment{ID: subjectID(i), DeviceID: "D0", Template: norm}
	}
	if err := orig.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored := mk()
	if err := restored.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len(ctx) != len(gal) {
		t.Fatalf("restored Len = %d, want %d", restored.Len(ctx), len(gal))
	}
	// Per-shard retrieval indexes must be rebuilt on load.
	for i, b := range restored.Backends() {
		st, ok := b.(*Local).Store().IndexStats()
		n, _ := b.Len(ctx)
		if !ok || st.Templates != n {
			t.Fatalf("shard %d index not rebuilt: ok=%v stats=%+v len=%d", i, ok, st, n)
		}
	}
	for _, probe := range probes[:4] {
		want, _, err := orig.IdentifyDetailed(ctx, probe, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := restored.IdentifyDetailed(ctx, probe, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("restored returned %d candidates, want %d", len(got), len(want))
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("restored candidate %d = %+v, want %+v", c, got[c], want[c])
			}
		}
	}

	// Mismatched layouts are rejected.
	two := localRouter(t, 2, Options{})
	if err := two.LoadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("want ErrShardMismatch, got %v", err)
	}
	if err := mk().LoadFrom(bytes.NewReader([]byte("FPGDxxxx"))); !errors.Is(err, ErrBadRouterFormat) {
		t.Fatalf("want ErrBadRouterFormat, got %v", err)
	}
}

func TestRouterConcurrentUse(t *testing.T) {
	gal, probes := fixtures(t)
	r := localRouter(t, 3, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 6; i < (w+1)*6; i++ {
				if err := r.Enroll(ctx, subjectID(i), "D0", gal[i]); err != nil {
					errs <- err
					return
				}
				if _, _, err := r.IdentifyDetailed(ctx, probes[i%len(probes)], 2); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.Len(ctx) != 24 {
		t.Fatalf("Len = %d", r.Len(ctx))
	}
}

// TestDegenerateKMatchesSingleStore pins the satellite contract: for
// any k <= 0 the router and a single store holding the same
// enrollments return the identical full ranking, and a k beyond the
// gallery clamps the same way on both paths.
func TestDegenerateKMatchesSingleStore(t *testing.T) {
	gal, probes := fixtures(t)
	single := gallery.New(nil)
	r := localRouter(t, 3, Options{})
	for i, tpl := range gal {
		if err := single.Enroll(subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int{-1000, -7, -1, 0, len(gal), len(gal) + 13} {
		for pi, probe := range probes[:3] {
			want, err := single.Identify(probe, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Identify(ctx, probe, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) || len(got) != len(gal) {
				t.Fatalf("k=%d probe=%d: router %d candidates, single %d, want %d",
					k, pi, len(got), len(want), len(gal))
			}
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("k=%d probe=%d: candidate %d = %+v, want %+v", k, pi, c, got[c], want[c])
				}
			}
		}
	}
}

// TestIdentifyCancellationPromptAndRouterReusable proves the
// scatter-gather satellite contract: cancelling the context of an
// in-flight IdentifyDetailed returns ctx.Err() well before the slowest
// shard would have answered, charges no shard a health penalty, leaks
// no workers, and leaves the router serving subsequent searches.
func TestIdentifyCancellationPromptAndRouterReusable(t *testing.T) {
	gal, probes := fixtures(t)
	slow := &flakyBackend{Backend: NewLocal("slow", gallery.New(nil)), slow: 10 * time.Second}
	backends := []Backend{NewLocal("fast", gallery.New(nil)), slow}
	// FailureThreshold 1 makes any wrongly-recorded failure degrade the
	// shard immediately, so the post-cancel assertions would catch it.
	r, err := New(backends, Options{FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, tpl := range gal[:8] {
		if err := r.Enroll(ctx, subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	before := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = r.IdentifyDetailed(cctx, probes[0], 3)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled scatter returned after %v", elapsed)
	}
	// The caller's cancellation is not the shard's fault.
	if got := r.Degraded(); len(got) != 0 {
		t.Fatalf("cancellation degraded shards %v", got)
	}
	// Abandoned workers drain (the slow backend honors its context).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("worker leak: %d goroutines before, %d after", before, now)
	}
	// The router stays usable: clear the slowdown and search again.
	slow.mu.Lock()
	slow.slow = 0
	slow.mu.Unlock()
	got, stats, err := r.IdentifyDetailed(ctx, probes[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial || stats.ShardsQueried != 2 {
		t.Fatalf("router degraded after cancellation: %+v", stats)
	}
	if len(got) == 0 {
		t.Fatal("no candidates after recovery")
	}
}

// TestIdentifyPreCancelledContext fails fast without querying any
// shard.
func TestIdentifyPreCancelledContext(t *testing.T) {
	_, probes := fixtures(t)
	r := localRouter(t, 2, Options{})
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.IdentifyDetailed(pre, probes[0], 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := r.Verify(pre, "x", probes[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("verify: want context.Canceled, got %v", err)
	}
	if err := r.Enroll(pre, "x", "D0", probes[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("enroll: want context.Canceled, got %v", err)
	}
	if got := r.Degraded(); len(got) != 0 {
		t.Fatalf("pre-cancelled calls degraded shards %v", got)
	}
}

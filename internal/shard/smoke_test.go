package shard

// End-to-end scatter-gather smoke: three real matchd-style servers on
// loopback TCP, a router over remote backends, batched enrollment, and
// the rank-1 equivalence guarantee against a single in-process store.
// FPINTEROP_SHARD_SMOKE_SUBJECTS scales the population (CI runs 1000;
// the default keeps `go test ./...` quick).

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func smokeSubjects() int {
	if v := os.Getenv("FPINTEROP_SHARD_SMOKE_SUBJECTS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 48
}

// bootShard starts one matchsvc server over a fresh store and returns a
// remote backend connected to it.
func bootShard(t *testing.T, name string) *Remote {
	t.Helper()
	srv := matchsvc.NewServer(gallery.New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	// Identification over a large shard can take a while; no per-request
	// deadline here (the router's ShardTimeout is the knob for that).
	return NewRemote(name, cli)
}

func TestShardSmoke(t *testing.T) {
	n := smokeSubjects()
	probeCount := 8
	if probeCount > n {
		probeCount = n
	}
	t.Logf("shard smoke: %d subjects across 3 TCP shards, %d probes", n, probeCount)

	cohort := population.NewCohort(rng.New(6241), population.CohortOptions{Size: n})
	d0, _ := sensor.ProfileByID("D0")
	single := gallery.New(nil)
	items := make([]Enrollment, n)
	for i, subj := range cohort.Subjects {
		imp, err := d0.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Shipping to a remote shard quantizes the template through the
		// wire codec; normalize first so the single store scores the
		// byte-identical templates the shards hold.
		data, err := minutiae.Marshal(imp.Template)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := minutiae.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		id := subjectID(i)
		items[i] = Enrollment{ID: id, DeviceID: "D0", Template: norm}
		if err := single.Enroll(id, "D0", norm); err != nil {
			t.Fatal(err)
		}
	}

	backends := make([]Backend, 3)
	for i := range backends {
		backends[i] = bootShard(t, fmt.Sprintf("shard-%d", i))
	}
	router, err := New(backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	if got := router.Len(ctx); got != n {
		t.Fatalf("router Len = %d, want %d", got, n)
	}
	for i, b := range backends {
		ln, err := b.Len(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ln == 0 {
			t.Fatalf("shard %d received no enrollments", i)
		}
		t.Logf("shard %d: %d enrollments", i, ln)
	}

	for p := 0; p < probeCount; p++ {
		imp, err := d0.CaptureSubject(cohort.Subjects[p], 1, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The probe crosses the wire too; normalize it the same way.
		data, err := minutiae.Marshal(imp.Template)
		if err != nil {
			t.Fatal(err)
		}
		probe, err := minutiae.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		imp.Template = probe
		want, err := single.Identify(imp.Template, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := router.IdentifyDetailed(ctx, imp.Template, 5)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Partial || stats.ShardsQueried != 3 {
			t.Fatalf("probe %d: partial coverage: %+v", p, stats)
		}
		if len(got) == 0 || len(want) == 0 {
			t.Fatalf("probe %d: empty candidates (sharded %d, single %d)", p, len(got), len(want))
		}
		if got[0].ID != want[0].ID {
			t.Fatalf("probe %d: sharded rank-1 %q != single-store rank-1 %q", p, got[0].ID, want[0].ID)
		}
		if got[0].ID != subjectID(p) {
			t.Fatalf("probe %d: rank-1 %q, want mate %q", p, got[0].ID, subjectID(p))
		}
		for c := range want {
			if c < len(got) && got[c] != want[c] {
				t.Fatalf("probe %d: candidate %d diverged: %+v vs %+v", p, c, got[c], want[c])
			}
		}
	}
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-width-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count samples outside the range.
	Under, Over int
}

// NewHistogram builds a histogram with n equal bins over [min, max).
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs > 0 bins")
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Min {
		h.Under++
		return
	}
	if x >= h.Max {
		h.Over++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// AddAll records every sample.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinRange returns the [lo, hi) edges of bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + float64(i)*w, h.Min + float64(i+1)*w
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using nearest-rank on
// a sorted copy.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0, 1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx], nil
}

// ECDF returns the empirical CDF evaluated at x: the fraction of samples
// ≤ x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// SortedCopy returns xs sorted ascending without modifying the input.
func SortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

package stats

import (
	"fmt"
	"math"
)

// KendallResult is the outcome of a Kendall rank correlation test.
type KendallResult struct {
	// Tau is the tau-b correlation coefficient in [−1, 1].
	Tau float64
	// Z is the normal-approximation test statistic.
	Z float64
	// P is the two-sided p-value under H₀: τ = 0, exact in log space.
	P PValue
	// N is the number of paired observations.
	N int
}

// Kendall computes the Kendall tau-b rank correlation between paired
// samples x and y, with the normal-approximation two-sided p-value used by
// the paper's Table 4. Tie corrections follow the standard tau-b
// definition. At least 2 pairs are required.
func Kendall(x, y []float64) (KendallResult, error) {
	n := len(x)
	if len(y) != n {
		return KendallResult{}, fmt.Errorf("stats: Kendall length mismatch %d != %d", n, len(y))
	}
	if n < 2 {
		return KendallResult{}, fmt.Errorf("stats: Kendall needs >= 2 pairs, got %d", n)
	}
	var concordant, discordant int64
	var tiesX, tiesY, tiesBoth int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				tiesBoth++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case (dx > 0) == (dy > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := int64(n) * int64(n-1) / 2
	nx := n0 - tiesX - tiesBoth
	ny := n0 - tiesY - tiesBoth
	// Single sqrt keeps tau exactly ±1 for perfectly (anti)correlated
	// inputs (sqrt(nx·ny) is exact when nx == ny and the product fits in
	// 53 bits).
	den := math.Sqrt(float64(nx) * float64(ny))
	res := KendallResult{N: n}
	if den == 0 {
		// All pairs tied in at least one variable: no information.
		res.Tau = 0
		res.P = PValue{Log10: 0}
		return res, nil
	}
	s := float64(concordant - discordant)
	res.Tau = s / den
	// Normal approximation: Var(S) = n(n-1)(2n+5)/18 under H0 (ignoring
	// tie corrections, as standard for near-continuous scores).
	sd := math.Sqrt(float64(n) * float64(n-1) * float64(2*n+5) / 18)
	if sd > 0 {
		res.Z = s / sd
	}
	res.P = TwoSidedNormalP(res.Z)
	return res, nil
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyResult is the outcome of a Mann–Whitney U (Wilcoxon
// rank-sum) test.
type MannWhitneyResult struct {
	// U is the test statistic for the first sample.
	U float64
	// Z is the normal-approximation statistic (tie-corrected).
	Z float64
	// P is the two-sided p-value, exact in log space.
	P PValue
	// CommonLanguage is the common-language effect size: the probability
	// that a random draw from the first sample exceeds one from the
	// second (0.5 = no shift).
	CommonLanguage float64
}

// MannWhitney tests whether two independent samples come from
// distributions with the same location, using the normal approximation
// with tie correction. It needs at least 2 observations per sample. This
// supplements the paper's Kendall analysis with a direct test of the
// DMG-vs-DDMG distribution shift.
func MannWhitney(x, y []float64) (MannWhitneyResult, error) {
	n1, n2 := len(x), len(y)
	if n1 < 2 || n2 < 2 {
		return MannWhitneyResult{}, fmt.Errorf("stats: MannWhitney needs >= 2 per sample, got %d and %d", n1, n2)
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie bookkeeping.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	mean := fn1 * fn2 / 2
	n := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	res := MannWhitneyResult{U: u1, CommonLanguage: u1 / (fn1 * fn2)}
	if variance > 0 {
		// Continuity correction.
		d := u1 - mean
		switch {
		case d > 0.5:
			d -= 0.5
		case d < -0.5:
			d += 0.5
		default:
			d = 0
		}
		res.Z = d / math.Sqrt(variance)
	}
	res.P = TwoSidedNormalP(res.Z)
	return res, nil
}

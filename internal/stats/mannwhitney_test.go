package stats

import (
	"math"
	"testing"
)

func TestMannWhitneyShiftDetected(t *testing.T) {
	var lo, hi []float64
	for i := 0; i < 100; i++ {
		lo = append(lo, float64(i%17))
		hi = append(hi, float64(i%17)+6)
	}
	res, err := MannWhitney(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if res.P.Log10 > -5 {
		t.Fatalf("clear shift not detected: p = %v", res.P)
	}
	// Samples span 0..16 and 6..22: the overlap keeps the common-language
	// effect below 1 but it must clearly exceed chance.
	if res.CommonLanguage < 0.75 {
		t.Fatalf("effect size %v too small for a 6-unit shift", res.CommonLanguage)
	}
	if res.Z <= 0 {
		t.Fatalf("Z = %v, want positive for first sample larger", res.Z)
	}
}

func TestMannWhitneyNoShift(t *testing.T) {
	var x, y []float64
	s := uint64(5)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>33) / float64(1<<31)
	}
	for i := 0; i < 300; i++ {
		x = append(x, next())
		y = append(y, next())
	}
	res, err := MannWhitney(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P.Log10 < -3 {
		t.Fatalf("identical distributions spuriously significant: %v", res.P)
	}
	if math.Abs(res.CommonLanguage-0.5) > 0.06 {
		t.Fatalf("effect size %v should be ~0.5", res.CommonLanguage)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	x := []float64{1, 3, 5, 7, 9, 11}
	y := []float64{2, 4, 6, 8, 10, 12}
	a, err := MannWhitney(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MannWhitney(y, x)
	if err != nil {
		t.Fatal(err)
	}
	// U1 + U2 = n1·n2; p-values identical.
	if math.Abs(a.U+b.U-36) > 1e-9 {
		t.Fatalf("U values %v + %v != 36", a.U, b.U)
	}
	if math.Abs(a.P.Log10-b.P.Log10) > 1e-9 {
		t.Fatalf("p-values differ: %v vs %v", a.P, b.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	x := []float64{5, 5, 5}
	y := []float64{5, 5, 5, 5}
	res, err := MannWhitney(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P.Log10 != 0 {
		t.Fatalf("fully tied data p = %v, want 1", res.P)
	}
	if math.Abs(res.CommonLanguage-0.5) > 1e-9 {
		t.Fatalf("tied effect size %v", res.CommonLanguage)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitney([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected size error")
	}
}

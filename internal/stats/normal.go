// Package stats implements the statistical machinery of the study:
// Kendall rank correlation with extreme-tail p-values (the paper reports
// values down to 5e-242, far below float64 underflow when computed
// naively), biometric error rates (FMR, FNMR, EER, DET), histograms,
// empirical CDFs and bootstrap confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// ln10 is the natural log of 10, used for log10 conversions.
const ln10 = 2.302585092994046

// NormTail returns P(Z > z) for a standard normal Z.
func NormTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// LogNormTail returns ln P(Z > z), stable for arbitrarily large z where
// the probability itself underflows float64. For z ≤ 8 it evaluates
// directly; beyond that it uses the asymptotic expansion
//
//	P(Z > z) ≈ φ(z)/z · (1 − 1/z² + 3/z⁴ − …)
func LogNormTail(z float64) float64 {
	if z <= 8 {
		p := NormTail(z)
		if p > 0 {
			return math.Log(p)
		}
	}
	// ln φ(z) = −z²/2 − ln√(2π)
	logPhi := -z*z/2 - 0.9189385332046727
	// Mills ratio series: 1 - 1/z² + 3/z⁴ - 15/z⁶.
	z2 := z * z
	series := 1 - 1/z2 + 3/(z2*z2) - 15/(z2*z2*z2)
	return logPhi - math.Log(z) + math.Log(series)
}

// PValue represents a (possibly astronomically small) probability as its
// base-10 logarithm, so values like 5.42e-242 or 1e-500 survive intact.
type PValue struct {
	// Log10 is log₁₀ of the p-value; 0 represents p = 1.
	Log10 float64
}

// PValueFromFloat converts an ordinary probability.
func PValueFromFloat(p float64) PValue {
	if p <= 0 {
		return PValue{Log10: math.Inf(-1)}
	}
	if p >= 1 {
		return PValue{Log10: 0}
	}
	return PValue{Log10: math.Log10(p)}
}

// Float returns the p-value as a float64, which may underflow to 0 for
// extreme values.
func (p PValue) Float() float64 {
	return math.Pow(10, p.Log10)
}

// Less reports whether p is smaller than q.
func (p PValue) Less(q PValue) bool { return p.Log10 < q.Log10 }

// String renders the p-value in scientific notation ("5.42e-242"), exact
// even when the value underflows float64.
func (p PValue) String() string {
	if math.IsInf(p.Log10, -1) {
		return "0"
	}
	if p.Log10 >= 0 {
		return "1"
	}
	exp := math.Floor(p.Log10)
	mant := math.Pow(10, p.Log10-exp)
	// Normalize mantissa rounding edge (e.g. 9.999 → 10.0).
	if mant >= 9.995 {
		mant = 1
		exp++
	}
	return fmt.Sprintf("%.2fe%+03.0f", mant, exp)
}

// TwoSidedNormalP returns the two-sided p-value for a z statistic,
// exact in log space for arbitrarily large |z|.
func TwoSidedNormalP(z float64) PValue {
	az := math.Abs(z)
	logP := LogNormTail(az) + math.Ln2
	if logP > 0 {
		logP = 0
	}
	return PValue{Log10: logP / ln10}
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// The slice-based functions below are convenience wrappers over
// ScoreDist for callers holding raw, unsorted score slices. Code that
// queries the same partition more than once (matrices, DET curves plus
// point lookups) should build one ScoreDist and reuse it.

// ThresholdForFMR returns the lowest decision threshold t such that the
// fraction of impostor scores ≥ t does not exceed target. Scores equal to
// the threshold count as matches (accept if score ≥ t). The impostor
// slice is not modified.
func ThresholdForFMR(impostor []float64, target float64) (float64, error) {
	return ScoreDistFromSorted(nil, SortedCopy(impostor)).ThresholdForFMR(target)
}

// nextAfter returns the smallest representable float64 greater than x.
func nextAfter(x float64) float64 {
	return math.Nextafter(x, math.Inf(1))
}

// FMRAt returns the fraction of impostor scores accepted (≥ t).
func FMRAt(impostor []float64, t float64) float64 {
	if len(impostor) == 0 {
		return 0
	}
	n := 0
	for _, s := range impostor {
		if s >= t {
			n++
		}
	}
	return float64(n) / float64(len(impostor))
}

// FNMRAt returns the fraction of genuine scores rejected (< t).
func FNMRAt(genuine []float64, t float64) float64 {
	if len(genuine) == 0 {
		return 0
	}
	n := 0
	for _, s := range genuine {
		if s < t {
			n++
		}
	}
	return float64(n) / float64(len(genuine))
}

// FNMRAtFMR computes the operating point the paper's Tables 5 and 6 use:
// fix the threshold from the impostor distribution at the target FMR, then
// report the genuine rejection rate at that threshold.
func FNMRAtFMR(genuine, impostor []float64, targetFMR float64) (fnmr, threshold float64, err error) {
	return NewScoreDist(genuine, impostor).FNMRAtFMR(targetFMR)
}

// EER returns the equal error rate: the rate where FMR equals FNMR, found
// by sweeping thresholds over the pooled score set, along with the
// threshold achieving it.
func EER(genuine, impostor []float64) (rate, threshold float64, err error) {
	return NewScoreDist(genuine, impostor).EER()
}

// DETPoint is one operating point of a detection-error-tradeoff curve.
type DETPoint struct {
	Threshold, FMR, FNMR float64
}

// DET sweeps n thresholds between the score extremes and returns the
// resulting curve ordered by threshold.
func DET(genuine, impostor []float64, n int) ([]DETPoint, error) {
	if len(genuine) == 0 || len(impostor) == 0 {
		return nil, fmt.Errorf("stats: DET needs both genuine and impostor scores")
	}
	return NewScoreDist(genuine, impostor).DET(n)
}

// BootstrapFNMR returns a percentile bootstrap confidence interval
// [lo, hi] for FNMR at a fixed threshold, resampling genuine scores with
// replacement. The next function provides deterministic randomness
// (e.g. rng.Source.Float64).
func BootstrapFNMR(genuine []float64, threshold float64, rounds int, conf float64, next func() float64) (lo, hi float64, err error) {
	if len(genuine) == 0 {
		return 0, 0, fmt.Errorf("stats: no genuine scores")
	}
	if rounds < 10 {
		return 0, 0, fmt.Errorf("stats: need >= 10 bootstrap rounds")
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0, 1)", conf)
	}
	n := len(genuine)
	rates := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		rejected := 0
		for i := 0; i < n; i++ {
			s := genuine[int(next()*float64(n))%n]
			if s < threshold {
				rejected++
			}
		}
		rates[r] = float64(rejected) / float64(n)
	}
	sort.Float64s(rates)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(rounds))
	hiIdx := int((1 - alpha) * float64(rounds))
	if hiIdx >= rounds {
		hiIdx = rounds - 1
	}
	return rates[loIdx], rates[hiIdx], nil
}

// RenderDET formats a DET curve as an aligned text table (threshold, FMR,
// FNMR per row) for terminal inspection.
func RenderDET(points []DETPoint) string {
	out := fmt.Sprintf("%10s %10s %10s\n", "threshold", "FMR", "FNMR")
	for _, p := range points {
		out += fmt.Sprintf("%10.3f %10.5f %10.5f\n", p.Threshold, p.FMR, p.FNMR)
	}
	return out
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// ScoreDist is a reusable sorted representation of one genuine/impostor
// score partition. Sorting happens once at construction; every rate
// query afterwards is a binary search (point lookups) or a single merge
// sweep (EER), so computing a full operating characteristic over n
// scores costs O(n log n) total instead of the O(n²) threshold rescans
// of the naive formulation.
type ScoreDist struct {
	genuine  []float64 // ascending
	impostor []float64 // ascending
}

// NewScoreDist copies and sorts the two score populations. The inputs
// are not modified.
func NewScoreDist(genuine, impostor []float64) *ScoreDist {
	return &ScoreDist{genuine: SortedCopy(genuine), impostor: SortedCopy(impostor)}
}

// ScoreDistFromSorted wraps two already-ascending slices without
// copying. The caller must not mutate them afterwards.
func ScoreDistFromSorted(genuine, impostor []float64) *ScoreDist {
	return &ScoreDist{genuine: genuine, impostor: impostor}
}

// NumGenuine returns the genuine population size.
func (d *ScoreDist) NumGenuine() int { return len(d.genuine) }

// NumImpostor returns the impostor population size.
func (d *ScoreDist) NumImpostor() int { return len(d.impostor) }

// FMRAt returns the fraction of impostor scores accepted (≥ t).
func (d *ScoreDist) FMRAt(t float64) float64 {
	n := len(d.impostor)
	if n == 0 {
		return 0
	}
	return float64(n-sort.SearchFloat64s(d.impostor, t)) / float64(n)
}

// FNMRAt returns the fraction of genuine scores rejected (< t).
func (d *ScoreDist) FNMRAt(t float64) float64 {
	n := len(d.genuine)
	if n == 0 {
		return 0
	}
	return float64(sort.SearchFloat64s(d.genuine, t)) / float64(n)
}

// ThresholdForFMR returns the lowest decision threshold t such that the
// fraction of impostor scores ≥ t does not exceed target. Scores equal
// to the threshold count as matches (accept if score ≥ t).
func (d *ScoreDist) ThresholdForFMR(target float64) (float64, error) {
	n := len(d.impostor)
	if n == 0 {
		return 0, fmt.Errorf("stats: no impostor scores")
	}
	if target < 0 || target > 1 {
		return 0, fmt.Errorf("stats: target FMR %v outside [0, 1]", target)
	}
	// Allowed number of false matches.
	allowed := int(target * float64(n))
	if allowed >= n {
		return d.impostor[0], nil
	}
	// Threshold just above the (allowed+1)-th largest score.
	idx := n - allowed - 1 // index of the largest score that must be rejected
	return nextAfter(d.impostor[idx]), nil
}

// FNMRAtFMR fixes the threshold from the impostor distribution at the
// target FMR, then reports the genuine rejection rate at that threshold
// (the paper's Tables 5 and 6 operating point).
func (d *ScoreDist) FNMRAtFMR(targetFMR float64) (fnmr, threshold float64, err error) {
	t, err := d.ThresholdForFMR(targetFMR)
	if err != nil {
		return 0, 0, err
	}
	return d.FNMRAt(t), t, nil
}

// EER returns the equal error rate — the operating point where FMR and
// FNMR meet — and the threshold achieving it. Candidate thresholds are
// the pooled scores themselves, visited in one ascending merge sweep
// with FMR/FNMR maintained incrementally; ties on the gap keep the
// lowest threshold, exactly as the brute-force sweep does.
func (d *ScoreDist) EER() (rate, threshold float64, err error) {
	nG, nI := len(d.genuine), len(d.impostor)
	if nG == 0 || nI == 0 {
		return 0, 0, fmt.Errorf("stats: EER needs both genuine and impostor scores")
	}
	bestGap := 2.0
	gi, ii := 0, 0 // counts of genuine/impostor scores strictly below t
	for gi < nG || ii < nI {
		var t float64
		switch {
		case gi >= nG:
			t = d.impostor[ii]
		case ii >= nI:
			t = d.genuine[gi]
		case d.genuine[gi] <= d.impostor[ii]:
			t = d.genuine[gi]
		default:
			t = d.impostor[ii]
		}
		fmr := float64(nI-ii) / float64(nI)
		fnmr := float64(gi) / float64(nG)
		gap := math.Abs(fmr - fnmr)
		if gap < bestGap {
			bestGap = gap
			rate = (fmr + fnmr) / 2
			threshold = t
		}
		for gi < nG && d.genuine[gi] == t {
			gi++
		}
		for ii < nI && d.impostor[ii] == t {
			ii++
		}
	}
	return rate, threshold, nil
}

// DET sweeps n thresholds between the score extremes and returns the
// resulting curve ordered by threshold.
func (d *ScoreDist) DET(n int) ([]DETPoint, error) {
	if len(d.genuine) == 0 || len(d.impostor) == 0 {
		return nil, fmt.Errorf("stats: DET needs both genuine and impostor scores")
	}
	if n < 2 {
		return nil, fmt.Errorf("stats: DET needs >= 2 points")
	}
	lo := min(d.genuine[0], d.impostor[0])
	hi := max(d.genuine[len(d.genuine)-1], d.impostor[len(d.impostor)-1])
	out := make([]DETPoint, n)
	for i := 0; i < n; i++ {
		t := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = DETPoint{Threshold: t, FMR: d.FMRAt(t), FNMR: d.FNMRAt(t)}
	}
	return out, nil
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// bruteEER is the O((G+I)²) reference sweep the ScoreDist merge sweep
// replaced: every pooled score is a candidate threshold, and FMR/FNMR
// are recounted from scratch at each one.
func bruteEER(genuine, impostor []float64) (rate, threshold float64) {
	all := make([]float64, 0, len(genuine)+len(impostor))
	all = append(all, genuine...)
	all = append(all, impostor...)
	sort.Float64s(all)
	bestGap := 2.0
	for _, t := range all {
		fmr := FMRAt(impostor, t)
		fnmr := FNMRAt(genuine, t)
		gap := math.Abs(fmr - fnmr)
		if gap < bestGap {
			bestGap = gap
			rate = (fmr + fnmr) / 2
			threshold = t
		}
	}
	return rate, threshold
}

// bruteFNMRAtFMR is the linear-scan reference for the Tables 5/6
// operating point.
func bruteFNMRAtFMR(genuine, impostor []float64, target float64) (fnmr, threshold float64) {
	s := SortedCopy(impostor)
	n := len(s)
	allowed := int(target * float64(n))
	if allowed >= n {
		threshold = s[0]
	} else {
		threshold = math.Nextafter(s[n-allowed-1], math.Inf(1))
	}
	return FNMRAt(genuine, threshold), threshold
}

// randScores produces deterministic pseudo-random score sets. Half the
// draws are quantized onto a coarse grid so ties and duplicate
// thresholds (within and across the two populations) are common, and
// the whole scale is shifted to cross zero.
func randScores(seed uint64, nGen, nImp int) (genuine, impostor []float64) {
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>33) / float64(1<<31)
	}
	draw := func(shift float64) float64 {
		v := next()*20 - shift
		if next() < 0.5 {
			v = math.Floor(v*2) / 2 // quantize → ties
		}
		return v
	}
	for i := 0; i < nGen; i++ {
		genuine = append(genuine, draw(5))
	}
	for i := 0; i < nImp; i++ {
		impostor = append(impostor, draw(12))
	}
	return genuine, impostor
}

func TestEERSweepMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		nGen := 2 + int(seed%97)
		nImp := 2 + int((seed/97)%113)
		genuine, impostor := randScores(seed, nGen, nImp)
		wantRate, wantThr := bruteEER(genuine, impostor)
		gotRate, gotThr, err := EER(genuine, impostor)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if gotRate != wantRate || gotThr != wantThr {
			t.Logf("seed %d: sweep (%v, %v) vs brute (%v, %v)",
				seed, gotRate, gotThr, wantRate, wantThr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFNMRAtFMRSweepMatchesBruteForce(t *testing.T) {
	targets := []float64{0, 0.001, 0.01, 0.1, 0.25, 0.5, 1}
	f := func(seed uint64) bool {
		genuine, impostor := randScores(seed, 3+int(seed%50), 3+int((seed/7)%200))
		for _, target := range targets {
			wantFNMR, wantThr := bruteFNMRAtFMR(genuine, impostor, target)
			gotFNMR, gotThr, err := FNMRAtFMR(genuine, impostor, target)
			if err != nil {
				t.Logf("seed %d target %v: %v", seed, target, err)
				return false
			}
			if gotFNMR != wantFNMR || gotThr != wantThr {
				t.Logf("seed %d target %v: sweep (%v, %v) vs brute (%v, %v)",
					seed, target, gotFNMR, gotThr, wantFNMR, wantThr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDETMatchesLinearScans(t *testing.T) {
	f := func(seed uint64) bool {
		genuine, impostor := randScores(seed, 2+int(seed%40), 2+int((seed/3)%60))
		det, err := DET(genuine, impostor, 25)
		if err != nil {
			return false
		}
		for _, p := range det {
			if p.FMR != FMRAt(impostor, p.Threshold) || p.FNMR != FNMRAt(genuine, p.Threshold) {
				t.Logf("seed %d t=%v: (%v, %v) vs linear (%v, %v)", seed, p.Threshold,
					p.FMR, p.FNMR, FMRAt(impostor, p.Threshold), FNMRAt(genuine, p.Threshold))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreDistPointQueriesMatchLinearScans(t *testing.T) {
	genuine, impostor := randScores(99, 200, 300)
	d := NewScoreDist(genuine, impostor)
	if d.NumGenuine() != 200 || d.NumImpostor() != 300 {
		t.Fatalf("sizes %d/%d", d.NumGenuine(), d.NumImpostor())
	}
	for t0 := -15.0; t0 <= 16; t0 += 0.25 {
		if got, want := d.FMRAt(t0), FMRAt(impostor, t0); got != want {
			t.Fatalf("FMRAt(%v) = %v, want %v", t0, got, want)
		}
		if got, want := d.FNMRAt(t0), FNMRAt(genuine, t0); got != want {
			t.Fatalf("FNMRAt(%v) = %v, want %v", t0, got, want)
		}
	}
}

// TestThresholdForFMRNegativeScores is the regression test for the old
// nextAfter: at x = -1 the perturbation x + x*1e-12 + 1e-12 cancels to
// exactly x, so the returned "threshold just above the largest rejected
// score" still accepted that score and the realized FMR overshot the
// target on score scales that go negative.
func TestThresholdForFMRNegativeScores(t *testing.T) {
	impostor := []float64{-9, -7, -5, -3, -1}
	// Target 0: every impostor, including the largest score -1, must be
	// rejected — exactly the value where the old perturbation cancelled.
	thr, err := ThresholdForFMR(impostor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= -1 {
		t.Fatalf("threshold %v does not exceed the boundary score -1", thr)
	}
	if got := FMRAt(impostor, thr); got != 0 {
		t.Fatalf("FMR at threshold = %v, want 0", got)
	}
	// Sweep a range of negative-heavy scales and targets: realized FMR
	// must never exceed the target.
	for seed := uint64(1); seed < 30; seed++ {
		_, imp := randScores(seed, 5, 50)
		for _, target := range []float64{0, 0.05, 0.3, 0.9} {
			thr, err := ThresholdForFMR(imp, target)
			if err != nil {
				t.Fatal(err)
			}
			if got := FMRAt(imp, thr); got > target {
				t.Fatalf("seed %d target %v: realized FMR %v", seed, target, got)
			}
		}
	}
}

func TestScoreDistErrors(t *testing.T) {
	d := NewScoreDist(nil, nil)
	if _, err := d.ThresholdForFMR(0.1); err == nil {
		t.Fatal("expected empty-impostor error")
	}
	if _, _, err := d.EER(); err == nil {
		t.Fatal("expected empty EER error")
	}
	if _, err := d.DET(10); err == nil {
		t.Fatal("expected empty DET error")
	}
	d = NewScoreDist([]float64{1, 2}, []float64{0, 1})
	if _, err := d.ThresholdForFMR(1.5); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := d.DET(1); err == nil {
		t.Fatal("expected point-count error")
	}
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// SpearmanResult is the outcome of a Spearman rank correlation test.
type SpearmanResult struct {
	// Rho is the rank correlation coefficient in [−1, 1].
	Rho float64
	// P is the two-sided p-value under H₀: ρ = 0 (t-approximation mapped
	// through the normal tail; adequate for the n ≥ 20 uses here).
	P PValue
	// N is the number of paired observations.
	N int
}

// Spearman computes the Spearman rank correlation with midranks for ties
// — a robustness companion to Kendall for the Table 4 analysis (the two
// must agree in sign and significance ordering).
func Spearman(x, y []float64) (SpearmanResult, error) {
	n := len(x)
	if len(y) != n {
		return SpearmanResult{}, fmt.Errorf("stats: Spearman length mismatch %d != %d", n, len(y))
	}
	if n < 3 {
		return SpearmanResult{}, fmt.Errorf("stats: Spearman needs >= 3 pairs, got %d", n)
	}
	rx := midranks(x)
	ry := midranks(y)
	// Pearson correlation of the ranks.
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := rx[i] - mx
		dy := ry[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	res := SpearmanResult{N: n}
	if sxx == 0 || syy == 0 {
		res.P = PValue{Log10: 0}
		return res, nil
	}
	res.Rho = sxy / math.Sqrt(sxx*syy)
	// t statistic with n-2 degrees of freedom; for the sample sizes used
	// here the normal tail is an adequate stand-in.
	if r2 := res.Rho * res.Rho; r2 < 1 {
		tstat := res.Rho * math.Sqrt(float64(n-2)/(1-r2))
		res.P = TwoSidedNormalP(tstat)
	} else {
		// Perfect correlation: p bounded by the permutation count.
		res.P = PValue{Log10: -lgammaLog10Factorial(n)}
	}
	return res, nil
}

// midranks returns 1-based ranks with ties sharing their average rank.
func midranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	return ranks
}

// lgammaLog10Factorial returns log10(n!) via the log-gamma function.
func lgammaLog10Factorial(n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg / ln10
}

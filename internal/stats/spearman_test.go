package stats

import (
	"math"
	"testing"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 4, 9, 16, 30, 100} // monotone, non-linear
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 1 {
		t.Fatalf("rho = %v, want 1 for monotone data", res.Rho)
	}
	if res.P.Log10 >= 0 {
		t.Fatal("perfect correlation should be significant")
	}
}

func TestSpearmanAnticorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 8, 6, 4, 2}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != -1 {
		t.Fatalf("rho = %v, want -1", res.Rho)
	}
}

func TestSpearmanIndependent(t *testing.T) {
	var x, y []float64
	s := uint64(333)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>33) / float64(1<<31)
	}
	for i := 0; i < 300; i++ {
		x = append(x, next())
		y = append(y, next())
	}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rho) > 0.12 {
		t.Fatalf("independent rho = %v", res.Rho)
	}
	if res.P.Log10 < -3 {
		t.Fatalf("independent data spuriously significant: %v", res.P)
	}
}

func TestSpearmanAgreesWithKendallInSign(t *testing.T) {
	x := []float64{3, 1, 4, 1.5, 5, 9, 2.6, 5.3}
	y := []float64{2, 0.5, 5, 2.5, 4, 10, 3, 6}
	sp, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if (sp.Rho > 0) != (kd.Tau > 0) {
		t.Fatalf("Spearman %v and Kendall %v disagree in sign", sp.Rho, kd.Tau)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3}
	y := []float64{1, 2, 2, 3, 3}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho <= 0 || res.Rho > 1 {
		t.Fatalf("tied rho = %v", res.Rho)
	}
	flat := []float64{7, 7, 7, 7, 7}
	res, err = Spearman(flat, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 0 || res.P.Log10 != 0 {
		t.Fatalf("degenerate Spearman = %+v", res)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected too-few error")
	}
}

func TestMidranks(t *testing.T) {
	r := midranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("midranks = %v, want %v", r, want)
		}
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormTailKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.96, 0.025},
		{-1.96, 0.975},
		{3, 0.00135},
	}
	for _, c := range cases {
		if got := NormTail(c.z); math.Abs(got-c.want) > 0.0005 {
			t.Fatalf("NormTail(%v) = %v, want ≈ %v", c.z, got, c.want)
		}
	}
}

func TestLogNormTailMatchesDirectInOverlap(t *testing.T) {
	for z := 0.5; z < 8; z += 0.5 {
		direct := math.Log(NormTail(z))
		got := LogNormTail(z)
		if math.Abs(got-direct) > 1e-6 {
			t.Fatalf("z=%v: LogNormTail %v vs direct %v", z, got, direct)
		}
	}
}

func TestLogNormTailExtreme(t *testing.T) {
	// z=33.2 should give p ≈ 1e-242 — the magnitude of the paper's
	// Table 4 diagonal.
	logP := LogNormTail(33.2)
	log10P := logP / math.Ln10
	if log10P > -240 || log10P < -245 {
		t.Fatalf("log10 P(Z>33.2) = %v, want ≈ -242", log10P)
	}
	// Monotone decreasing.
	if LogNormTail(50) >= LogNormTail(40) {
		t.Fatal("tail not decreasing")
	}
}

func TestPValueString(t *testing.T) {
	cases := []struct {
		p    PValue
		want string
	}{
		{PValueFromFloat(0.05), "5.00e-02"},
		{PValueFromFloat(1), "1"},
		{PValueFromFloat(0), "0"},
		{PValue{Log10: -241.266}, "5.42e-242"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Fatalf("PValue(%v).String() = %q, want %q", c.p.Log10, got, c.want)
		}
	}
}

func TestPValueOrdering(t *testing.T) {
	a := PValue{Log10: -300}
	b := PValue{Log10: -2}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("ordering wrong")
	}
	if b.Float() != math.Pow(10, -2) {
		t.Fatal("Float conversion wrong")
	}
}

func TestTwoSidedNormalP(t *testing.T) {
	p := TwoSidedNormalP(1.96)
	if math.Abs(p.Float()-0.05) > 0.001 {
		t.Fatalf("two-sided p(1.96) = %v, want ≈ 0.05", p.Float())
	}
	if TwoSidedNormalP(0).Float() < 0.99 {
		t.Fatal("p(0) should be ~1")
	}
	// Symmetric in sign.
	if TwoSidedNormalP(2.5) != TwoSidedNormalP(-2.5) {
		t.Fatal("not symmetric")
	}
}

func TestKendallPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := Kendall(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 1 {
		t.Fatalf("tau = %v, want 1", res.Tau)
	}
	if res.P.Log10 > -2 {
		t.Fatalf("perfect correlation p = %v not significant", res.P)
	}
}

func TestKendallPerfectAnticorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	res, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != -1 {
		t.Fatalf("tau = %v, want -1", res.Tau)
	}
}

func TestKendallIndependent(t *testing.T) {
	// Deterministic pseudo-random independent sequences.
	var x, y []float64
	s := uint64(12345)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>33) / float64(1<<31)
	}
	for i := 0; i < 400; i++ {
		x = append(x, next())
		y = append(y, next())
	}
	res, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Tau) > 0.1 {
		t.Fatalf("independent tau = %v", res.Tau)
	}
	if res.P.Log10 < -3 {
		t.Fatalf("independent data spuriously significant: %v", res.P)
	}
}

func TestKendallDiagonalMagnitudeMatchesPaper(t *testing.T) {
	// 494 subjects, identical lists → tau = 1 and p ≈ e-242, the paper's
	// Table 4 diagonal magnitude.
	x := make([]float64, 494)
	for i := range x {
		x[i] = float64(i%100) + float64(i)*0.001
	}
	res, err := Kendall(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 1 {
		t.Fatalf("tau = %v", res.Tau)
	}
	if res.P.Log10 > -230 || res.P.Log10 < -255 {
		t.Fatalf("diagonal p = %v (log10 %v), want ≈ e-242", res.P, res.P.Log10)
	}
}

func TestKendallTies(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3, 3}
	y := []float64{1, 2, 2, 3, 3, 4}
	res, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau <= 0 || res.Tau > 1 {
		t.Fatalf("tied tau = %v", res.Tau)
	}
	// All-tied x carries no information.
	flat := []float64{5, 5, 5, 5, 5, 5}
	res, err = Kendall(flat, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 0 || res.P.Log10 != 0 {
		t.Fatalf("degenerate Kendall = %+v", res)
	}
}

func TestKendallErrors(t *testing.T) {
	if _, err := Kendall([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := Kendall([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few error")
	}
}

func TestKendallPropertySymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>33) / float64(1<<31)
		}
		var x, y []float64
		for i := 0; i < 30; i++ {
			x = append(x, next())
			y = append(y, next())
		}
		a, err1 := Kendall(x, y)
		b, err2 := Kendall(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Tau-b.Tau) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdForFMR(t *testing.T) {
	impostor := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Target 20%: allow 2 of 10 impostors through → threshold just above 7.
	thr, err := ThresholdForFMR(impostor, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := FMRAt(impostor, thr); got > 0.2 {
		t.Fatalf("FMR at threshold = %v > target", got)
	}
	if got := FMRAt(impostor, thr); got < 0.15 {
		t.Fatalf("threshold too conservative: FMR %v", got)
	}
}

func TestThresholdForFMRZeroTarget(t *testing.T) {
	impostor := []float64{1, 5, 3}
	thr, err := ThresholdForFMR(impostor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if FMRAt(impostor, thr) != 0 {
		t.Fatal("zero-target threshold admits impostors")
	}
}

func TestThresholdForFMRErrors(t *testing.T) {
	if _, err := ThresholdForFMR(nil, 0.1); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := ThresholdForFMR([]float64{1}, 1.5); err == nil {
		t.Fatal("expected range error")
	}
}

func TestFNMRAt(t *testing.T) {
	genuine := []float64{2, 8, 9, 10}
	if got := FNMRAt(genuine, 7); got != 0.25 {
		t.Fatalf("FNMR = %v, want 0.25", got)
	}
	if FNMRAt(nil, 7) != 0 {
		t.Fatal("empty FNMR should be 0")
	}
}

func TestFNMRAtFMREndToEnd(t *testing.T) {
	// Well-separated distributions: genuine ~ 10-20, impostor ~ 0-5.
	var genuine, impostor []float64
	for i := 0; i < 1000; i++ {
		genuine = append(genuine, 10+float64(i%100)/10)
		impostor = append(impostor, float64(i%50)/10)
	}
	genuine[0] = 1 // one failure
	fnmr, thr, err := FNMRAtFMR(genuine, impostor, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if thr < 4.9 || thr > 10 {
		t.Fatalf("threshold %v outside separation gap", thr)
	}
	if math.Abs(fnmr-0.001) > 1e-9 {
		t.Fatalf("FNMR = %v, want 0.001 (the planted failure)", fnmr)
	}
}

func TestEER(t *testing.T) {
	genuine := []float64{5, 6, 7, 8, 9, 10}
	impostor := []float64{1, 2, 3, 4, 5, 6}
	rate, thr, err := EER(genuine, impostor)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0 || rate > 0.5 {
		t.Fatalf("EER = %v implausible", rate)
	}
	if thr < 4 || thr > 8 {
		t.Fatalf("EER threshold %v outside overlap", thr)
	}
	if _, _, err := EER(nil, impostor); err == nil {
		t.Fatal("expected error")
	}
}

func TestDETMonotone(t *testing.T) {
	genuine := []float64{5, 6, 7, 8, 9, 10, 11, 12}
	impostor := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	det, err := DET(genuine, impostor, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(det); i++ {
		if det[i].FMR > det[i-1].FMR+1e-12 {
			t.Fatal("FMR must not increase with threshold")
		}
		if det[i].FNMR < det[i-1].FNMR-1e-12 {
			t.Fatal("FNMR must not decrease with threshold")
		}
	}
	if _, err := DET(genuine, impostor, 1); err == nil {
		t.Fatal("expected n error")
	}
}

func TestBootstrapFNMR(t *testing.T) {
	genuine := make([]float64, 200)
	for i := range genuine {
		genuine[i] = float64(i) // 10% below threshold 20
	}
	s := uint64(9)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>33) / float64(1<<31)
	}
	lo, hi, err := BootstrapFNMR(genuine, 20, 200, 0.9, next)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.1 || hi < 0.1 {
		t.Fatalf("CI [%v, %v] excludes the true rate 0.1", lo, hi)
	}
	if hi-lo > 0.15 {
		t.Fatalf("CI [%v, %v] implausibly wide", lo, hi)
	}
	if _, _, err := BootstrapFNMR(nil, 1, 100, 0.9, next); err == nil {
		t.Fatal("expected empty error")
	}
	if _, _, err := BootstrapFNMR(genuine, 1, 5, 0.9, next); err == nil {
		t.Fatal("expected rounds error")
	}
	if _, _, err := BootstrapFNMR(genuine, 1, 100, 2, next); err == nil {
		t.Fatal("expected confidence error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42})
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0, 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	lo, hi := h.BinRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bin range = [%v, %v)", lo, hi)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected bins error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("expected range error")
	}
}

func TestMeanStdQuantile(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatal("mean wrong")
	}
	if math.Abs(StdDev(xs)-2) > 1e-9 {
		t.Fatalf("std = %v", StdDev(xs))
	}
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 4 && q != 5 {
		t.Fatalf("median = %v", q)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Quantile(xs, 2); err == nil {
		t.Fatal("expected range error")
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if ECDF(xs, 2.5) != 0.5 {
		t.Fatal("ECDF wrong")
	}
	if ECDF(nil, 1) != 0 {
		t.Fatal("empty ECDF should be 0")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SortedCopy(xs)
	if xs[0] != 3 {
		t.Fatal("input mutated")
	}
	if s[0] != 1 || s[2] != 3 {
		t.Fatal("not sorted")
	}
}

func TestPValueStringRendering(t *testing.T) {
	// Exponents should render with sign and at least two digits.
	p := PValue{Log10: -6.5}
	if !strings.Contains(p.String(), "e-") {
		t.Fatalf("rendering %q missing exponent", p.String())
	}
}

func TestRenderDET(t *testing.T) {
	genuine := []float64{5, 8, 11}
	impostor := []float64{1, 2, 3}
	det, err := DET(genuine, impostor, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderDET(det)
	if !strings.Contains(out, "FNMR") || len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("rendering wrong:\n%s", out)
	}
}

package study

import (
	"fmt"
	"sort"

	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/stats"
)

// Table3Counts reports the size of each score set (the paper's Table 3).
type Table3Counts struct {
	DMG, DDMG, DMI, DDMI int
}

// Table3 computes the score-set cardinalities.
func Table3(sets *ScoreSets) Table3Counts {
	return Table3Counts{
		DMG:  len(sets.DMG),
		DDMG: len(sets.DDMG),
		DMI:  len(sets.DMI),
		DDMI: len(sets.DDMI),
	}
}

// Figure1Data is the demographic summary of the cohort (the paper's
// Figure 1).
type Figure1Data struct {
	Ages        map[population.AgeGroup]int
	Ethnicities map[population.Ethnicity]int
	Total       int
}

// Figure1 summarizes cohort demographics.
func Figure1(ds *Dataset) Figure1Data {
	return Figure1Data{
		Ages:        ds.Cohort.AgeHistogram(),
		Ethnicities: ds.Cohort.EthnicityHistogram(),
		Total:       len(ds.Cohort.Subjects),
	}
}

// Figure2Data holds, per probe device, the genuine cross-device match
// scores against a fixed gallery device, sorted descending (the paper's
// Figure 2 uses the Seek II, D3, as the gallery).
type Figure2Data struct {
	GalleryDevice string
	// SeriesByProbe maps probe device ID to its ordered score curve.
	SeriesByProbe map[string][]float64
}

// Figure2 extracts the ordered genuine score curves for a gallery device.
func Figure2(ds *Dataset, sets *ScoreSets, galleryID string) (Figure2Data, error) {
	gi, ok := ds.DeviceIndex(galleryID)
	if !ok {
		return Figure2Data{}, fmt.Errorf("study: unknown gallery device %q", galleryID)
	}
	out := Figure2Data{GalleryDevice: galleryID, SeriesByProbe: map[string][]float64{}}
	// Same-device series from DMG (or GenuineAll for ink).
	for _, s := range sets.DMG {
		if s.DeviceG == gi {
			id := ds.Devices[s.DeviceP].ID
			out.SeriesByProbe[id] = append(out.SeriesByProbe[id], s.Value)
		}
	}
	for _, s := range sets.DDMG {
		if s.DeviceG == gi {
			id := ds.Devices[s.DeviceP].ID
			out.SeriesByProbe[id] = append(out.SeriesByProbe[id], s.Value)
		}
	}
	for _, series := range out.SeriesByProbe {
		sort.Sort(sort.Reverse(sort.Float64Slice(series)))
	}
	return out, nil
}

// FigureHistData is a genuine/impostor score histogram pair for one device
// combination (the paper's Figures 3 and 4).
type FigureHistData struct {
	GalleryDevice, ProbeDevice string
	Genuine, Impostor          *stats.Histogram
}

// histRange covers the full matcher score scale with unit-width bins, as
// in the paper's histograms ("the frequency of the DMI scores for the
// range 0-1 is 18,721...").
func histRange() (float64, float64, int) { return 0, 30, 30 }

// Figure3 builds same-device genuine/impostor histograms for one device
// (the paper uses D0, the Guardian R2).
func Figure3(ds *Dataset, sets *ScoreSets, deviceID string) (FigureHistData, error) {
	di, ok := ds.DeviceIndex(deviceID)
	if !ok {
		return FigureHistData{}, fmt.Errorf("study: unknown device %q", deviceID)
	}
	lo, hi, n := histRange()
	gh, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		return FigureHistData{}, err
	}
	ih, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		return FigureHistData{}, err
	}
	for _, s := range sets.DMG {
		if s.DeviceG == di {
			gh.Add(s.Value)
		}
	}
	for _, s := range sets.DMI {
		if s.DeviceG == di {
			ih.Add(s.Value)
		}
	}
	return FigureHistData{GalleryDevice: deviceID, ProbeDevice: deviceID, Genuine: gh, Impostor: ih}, nil
}

// Figure4 builds cross-device genuine/impostor histograms for an ordered
// device pair (the paper uses D0 gallery vs D1 probe).
func Figure4(ds *Dataset, sets *ScoreSets, galleryID, probeID string) (FigureHistData, error) {
	gi, ok := ds.DeviceIndex(galleryID)
	if !ok {
		return FigureHistData{}, fmt.Errorf("study: unknown gallery device %q", galleryID)
	}
	pi, ok := ds.DeviceIndex(probeID)
	if !ok {
		return FigureHistData{}, fmt.Errorf("study: unknown probe device %q", probeID)
	}
	if gi == pi {
		return FigureHistData{}, fmt.Errorf("study: Figure 4 needs two distinct devices")
	}
	lo, hi, n := histRange()
	gh, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		return FigureHistData{}, err
	}
	ih, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		return FigureHistData{}, err
	}
	for _, s := range sets.DDMG {
		if s.DeviceG == gi && s.DeviceP == pi {
			gh.Add(s.Value)
		}
	}
	for _, s := range sets.DDMI {
		if s.DeviceG == gi && s.DeviceP == pi {
			ih.Add(s.Value)
		}
	}
	return FigureHistData{GalleryDevice: galleryID, ProbeDevice: probeID, Genuine: gh, Impostor: ih}, nil
}

// Table4Data is the Kendall rank correlation p-value matrix: rows are the
// four live-scan devices DX (the same-device reference list), columns are
// all five devices DY (the cross-device comparison list).
type Table4Data struct {
	RowIDs, ColIDs []string
	Tau            [][]float64
	P              [][]stats.PValue
}

// Table4 runs Kendall's test between the per-subject genuine score list of
// each same-device scenario (DX gallery, DX probe) and each scenario with
// the same gallery but a different probe device (DX gallery, DY probe),
// paired by subject — the paper's Table 4.
func Table4(ds *Dataset, sets *ScoreSets) (Table4Data, error) {
	nDev := ds.NumDevices()
	nSubj := ds.NumSubjects()
	// Per (gallery, probe) device pair: one genuine score per subject.
	// Same-device lists come from DMG (sample0 vs sample1); cross-device
	// from DDMG (sample0 vs sample0). Ink (D4) has no DMG row.
	lists := make([][][]float64, nDev)
	for i := range lists {
		lists[i] = make([][]float64, nDev)
		for j := range lists[i] {
			lists[i][j] = make([]float64, nSubj)
		}
	}
	for _, s := range sets.DMG {
		lists[s.DeviceG][s.DeviceP][s.SubjectG] = s.Value
	}
	// Ink diagonal (rescan pair) comes from GenuineAll.
	for _, s := range sets.GenuineAll {
		if s.DeviceG == s.DeviceP && ds.Devices[s.DeviceG].Ink &&
			s.SampleG == 0 && s.SampleP == 1 {
			lists[s.DeviceG][s.DeviceP][s.SubjectG] = s.Value
		}
	}
	for _, s := range sets.DDMG {
		lists[s.DeviceG][s.DeviceP][s.SubjectG] = s.Value
	}

	var out Table4Data
	for di := 0; di < nDev; di++ {
		if ds.Devices[di].Ink {
			continue // rows are the four live-scan devices
		}
		out.RowIDs = append(out.RowIDs, ds.Devices[di].ID)
	}
	for di := 0; di < nDev; di++ {
		out.ColIDs = append(out.ColIDs, ds.Devices[di].ID)
	}
	out.Tau = make([][]float64, len(out.RowIDs))
	out.P = make([][]stats.PValue, len(out.RowIDs))
	rowOf := make(map[int]int, len(out.RowIDs)) // device index → matrix row
	row := 0
	for di := 0; di < nDev; di++ {
		if ds.Devices[di].Ink {
			continue
		}
		out.Tau[row] = make([]float64, nDev)
		out.P[row] = make([]stats.PValue, nDev)
		rowOf[di] = row
		row++
	}
	// The Kendall tests of different cells are independent; run them on
	// the bounded worker pool, each writing only its own (row, dj) slot.
	err := forEachCell(nDev, ds.Config.Parallelism, func(di, dj int) error {
		r, ok := rowOf[di]
		if !ok {
			return nil // ink device: no same-device reference row
		}
		res, err := stats.Kendall(lists[di][di], lists[di][dj])
		if err != nil {
			return fmt.Errorf("table 4 cell (%s, %s): %w",
				ds.Devices[di].ID, ds.Devices[dj].ID, err)
		}
		out.Tau[r][dj] = res.Tau
		out.P[r][dj] = res.P
		return nil
	})
	if err != nil {
		return Table4Data{}, err
	}
	return out, nil
}

// FNMRMatrixData is an interoperability FNMR matrix (Tables 5 and 6):
// rows are enrollment (gallery) devices, columns are verification (probe)
// devices.
type FNMRMatrixData struct {
	DeviceIDs []string
	// FNMR[i][j] is the false-non-match rate enrolling on device i and
	// verifying on device j at the configured FMR.
	FNMR [][]float64
	// Threshold[i][j] is the decision threshold that fixes the FMR.
	Threshold [][]float64
	// TargetFMR is the fixed false-match rate.
	TargetFMR float64
	// GenuineCount[i][j] is how many genuine comparisons the cell used.
	GenuineCount [][]int
}

// FNMRMatrixOptions configures matrix computation.
type FNMRMatrixOptions struct {
	// TargetFMR is the fixed false match rate (Table 5 uses 0.01% = 1e-4,
	// Table 6 uses 0.1% = 1e-3).
	TargetFMR float64
	// MaxQuality, when non-zero, keeps only comparisons where both
	// impressions have NFIQ class strictly below this value (Table 6 uses
	// 3: only NFIQ 1–2 images).
	MaxQuality nfiq.Class
}

// FNMRMatrix computes an interoperability FNMR matrix from the dense
// genuine set and the impostor sets. Thresholds are set per cell from that
// cell's impostor score population.
func FNMRMatrix(ds *Dataset, sets *ScoreSets, opts FNMRMatrixOptions) (FNMRMatrixData, error) {
	if opts.TargetFMR <= 0 {
		return FNMRMatrixData{}, fmt.Errorf("study: FNMR matrix needs a positive target FMR")
	}
	nDev := ds.NumDevices()
	keep := func(s Score) bool {
		if opts.MaxQuality == 0 {
			return true
		}
		return s.QualityG < opts.MaxQuality && s.QualityP < opts.MaxQuality
	}
	genuine := partitionByDevicePair(nDev, keep, sets.GenuineAll)
	impostor := partitionByDevicePair(nDev, keep, sets.DMI, sets.DDMI)

	out := FNMRMatrixData{TargetFMR: opts.TargetFMR}
	for i := 0; i < nDev; i++ {
		out.DeviceIDs = append(out.DeviceIDs, ds.Devices[i].ID)
	}
	out.FNMR = make([][]float64, nDev)
	out.Threshold = make([][]float64, nDev)
	out.GenuineCount = make([][]int, nDev)
	for i := 0; i < nDev; i++ {
		out.FNMR[i] = make([]float64, nDev)
		out.Threshold[i] = make([]float64, nDev)
		out.GenuineCount[i] = make([]int, nDev)
	}
	// Each cell sorts its partition once; the threshold fix and the FNMR
	// lookup both reuse the same ScoreDist. Cells are independent, so
	// they run on the bounded worker pool.
	err := forEachCell(nDev, ds.Config.Parallelism, func(i, j int) error {
		gen := genuine[i][j]
		imp := impostor[i][j]
		out.GenuineCount[i][j] = len(gen)
		if len(gen) == 0 || len(imp) == 0 {
			// Cell has no usable data (tiny test configs); report 0.
			return nil
		}
		// Cell-private partitions: sort in place, no copy.
		sort.Float64s(gen)
		sort.Float64s(imp)
		fnmr, thr, err := stats.ScoreDistFromSorted(gen, imp).FNMRAtFMR(opts.TargetFMR)
		if err != nil {
			return fmt.Errorf("cell (%d,%d): %w", i, j, err)
		}
		out.FNMR[i][j] = fnmr
		out.Threshold[i][j] = thr
		return nil
	})
	if err != nil {
		return FNMRMatrixData{}, err
	}
	return out, nil
}

// Figure5Data is the count of low genuine scores (< 10) per (gallery
// quality, probe quality) pair — the paper's Figure 5, split into the
// same-device surface (a) and the cross-device surface (b).
type Figure5Data struct {
	// SameDevice[qg-1][qp-1] counts same-device genuine scores below the
	// threshold for gallery quality qg and probe quality qp.
	SameDevice [5][5]int
	// CrossDevice is the analogous surface for diverse device pairs.
	CrossDevice [5][5]int
	// Threshold is the low-score cutoff (10, as in the paper).
	Threshold float64
}

// Figure5 computes the low-score quality surfaces.
func Figure5(sets *ScoreSets) Figure5Data {
	out := Figure5Data{Threshold: 10}
	for _, s := range sets.GenuineAll {
		if s.Value >= out.Threshold {
			continue
		}
		if !s.QualityG.Valid() || !s.QualityP.Valid() {
			continue
		}
		if s.SameDevice() {
			out.SameDevice[s.QualityG-1][s.QualityP-1]++
		} else {
			out.CrossDevice[s.QualityG-1][s.QualityP-1]++
		}
	}
	return out
}

// MeanGenuineByPair returns the mean genuine score per ordered device
// pair — a compact summary used in reporting and tests.
func MeanGenuineByPair(ds *Dataset, sets *ScoreSets) [][]float64 {
	nDev := ds.NumDevices()
	sum := make([][]float64, nDev)
	cnt := make([][]int, nDev)
	for i := range sum {
		sum[i] = make([]float64, nDev)
		cnt[i] = make([]int, nDev)
	}
	for _, s := range sets.GenuineAll {
		sum[s.DeviceG][s.DeviceP] += s.Value
		cnt[s.DeviceG][s.DeviceP]++
	}
	out := make([][]float64, nDev)
	for i := range out {
		out[i] = make([]float64, nDev)
		for j := range out[i] {
			if cnt[i][j] > 0 {
				out[i][j] = sum[i][j] / float64(cnt[i][j])
			}
		}
	}
	return out
}

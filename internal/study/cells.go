package study

import "sync"

// This file holds the shared machinery for the per-device-pair analyses
// (EER matrix, FNMR matrices, Kendall table, shift tests): one-pass
// partitioning of score sets into (gallery device, probe device) cells,
// and a bounded worker pool — the Parallelism convention from Config —
// that fans independent cells out across goroutines. Workers write only
// to their own preallocated result slots, so results stay deterministic
// regardless of scheduling.

// partitionByDevicePair groups raw score values by (gallery device,
// probe device) over the given sets. A nil keep accepts everything.
// A counting pass sizes every cell exactly, so the fill pass never
// regrows a slice; the returned cells are freshly allocated and safe
// for callers to sort in place.
func partitionByDevicePair(nDev int, keep func(Score) bool, sets ...[]Score) [][][]float64 {
	counts := make([]int, nDev*nDev)
	for _, set := range sets {
		for i := range set {
			s := &set[i]
			if keep != nil && !keep(*s) {
				continue
			}
			counts[s.DeviceG*nDev+s.DeviceP]++
		}
	}
	out := make([][][]float64, nDev)
	for i := range out {
		out[i] = make([][]float64, nDev)
		for j := range out[i] {
			out[i][j] = make([]float64, 0, counts[i*nDev+j])
		}
	}
	for _, set := range sets {
		for i := range set {
			s := &set[i]
			if keep != nil && !keep(*s) {
				continue
			}
			out[s.DeviceG][s.DeviceP] = append(out[s.DeviceG][s.DeviceP], s.Value)
		}
	}
	return out
}

// forEachIndex runs fn(0..n-1) on at most parallelism goroutines and
// returns the first error any call produced.
func forEachIndex(n, parallelism int, fn func(i int) error) error {
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > n {
		parallelism = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		next     int
		firstErr error
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					setErr(&mu, &firstErr, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// forEachCell runs fn over every (gallery, probe) device pair of an
// nDev×nDev matrix on the bounded worker pool.
func forEachCell(nDev, parallelism int, fn func(i, j int) error) error {
	return forEachIndex(nDev*nDev, parallelism, func(k int) error {
		return fn(k/nDev, k%nDev)
	})
}

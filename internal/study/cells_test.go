package study

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
)

func TestForEachIndex(t *testing.T) {
	var hits [100]atomic.Int64
	if err := forEachIndex(len(hits), 7, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
	// Errors surface, and every index still runs (no early abort that
	// would leave result slots unwritten).
	var n atomic.Int64
	err := forEachIndex(50, 0, func(i int) error {
		n.Add(1)
		if i == 3 {
			return errors.New("cell failure")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "cell failure") {
		t.Fatalf("error not propagated: %v", err)
	}
	if n.Load() != 50 {
		t.Fatalf("visited %d of 50 after error", n.Load())
	}
}

// TestParallelAnalysesDeterministic computes every cell-parallel
// analysis several times concurrently and requires identical results —
// under -race this also proves the worker pools share no cell state.
func TestParallelAnalysesDeterministic(t *testing.T) {
	ds, sets := testStudy(t)
	type result struct {
		eer   EERMatrixData
		fnmr  FNMRMatrixData
		t4    Table4Data
		shift ShiftAnalysis
	}
	compute := func() (result, error) {
		var r result
		var err error
		if r.eer, err = EERMatrix(ds, sets); err != nil {
			return r, err
		}
		if r.fnmr, err = FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.01}); err != nil {
			return r, err
		}
		if r.t4, err = Table4(ds, sets); err != nil {
			return r, err
		}
		r.shift, err = Shift(ds, sets)
		return r, err
	}
	const runs = 4
	results := make([]result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = compute()
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent run %d differs from run 0", i)
		}
	}
}

// selectiveFailMatcher fails deterministically for one gallery template
// and counts every comparison attempted.
type selectiveFailMatcher struct {
	inner match.Matcher
	bad   *minutiae.Template
	calls atomic.Int64
}

func (m *selectiveFailMatcher) Match(g, p *minutiae.Template) (match.Result, error) {
	m.calls.Add(1)
	if g == m.bad {
		return match.Result{}, errors.New("injected matcher failure")
	}
	return m.inner.Match(g, p)
}

// TestGenerateScoresMatcherError checks that a match error fails the run
// loudly without a worker abandoning the rest of its chunk: every
// comparison must still be attempted, and the error must say how many
// failed.
func TestGenerateScoresMatcherError(t *testing.T) {
	cfg := Config{Seed: 7, Subjects: 4, MaxDMI: 20, MaxDDMI: 20, Parallelism: 3}
	ds, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := GenerateScores(ds)
	if err != nil {
		t.Fatal(err)
	}
	total := len(clean.DMG) + len(clean.DDMG) + len(clean.DMI) + len(clean.DDMI) + len(clean.GenuineAll)

	fm := &selectiveFailMatcher{inner: ds.Config.Matcher, bad: ds.Impression(0, 0, 0).Template}
	ds.Config.Matcher = fm
	sets, err := GenerateScores(ds)
	if err == nil {
		t.Fatal("expected an error from the failing matcher")
	}
	if sets != nil {
		t.Fatal("failed run must not return partial score sets")
	}
	if !strings.Contains(err.Error(), "comparisons failed") ||
		!strings.Contains(err.Error(), "injected matcher failure") {
		t.Fatalf("error does not report failure count and cause: %v", err)
	}
	if got := fm.calls.Load(); got != int64(total) {
		t.Fatalf("only %d of %d comparisons attempted: worker dropped its chunk", got, total)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("of %d comparisons", total)) {
		t.Fatalf("error does not name the comparison total %d: %v", total, err)
	}
}

package study

// The whole study must be a pure function of its seed: two independent
// end-to-end runs with equal configs must produce byte-identical score
// exports, and a different seed must not.

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func digestOf(t *testing.T, seed uint64) [32]byte {
	t.Helper()
	cfg := Config{Seed: seed, Subjects: 6, MaxDMI: 40, MaxDDMI: 40}
	ds, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := GenerateScores(ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScoresCSV(&buf, ds, sets); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

func TestEndToEndDeterminism(t *testing.T) {
	a := digestOf(t, 77)
	b := digestOf(t, 77)
	if a != b {
		t.Fatal("equal seeds produced different score exports")
	}
	c := digestOf(t, 78)
	if a == c {
		t.Fatal("different seeds produced identical score exports")
	}
}

package study

import (
	"fmt"

	"fpinterop/internal/gallery"
	"fpinterop/internal/nfiq"
)

// Experiment is one reproducible artifact of the paper: a table or a
// figure, with the code that regenerates it.
type Experiment struct {
	// ID is the paper artifact identifier, e.g. "table5" or "figure2".
	ID string
	// Title is the paper caption, abbreviated.
	Title string
	// PaperClaim is the qualitative result the artifact supports.
	PaperClaim string
	// Run renders the artifact from a computed study.
	Run func(ds *Dataset, sets *ScoreSets) (string, error)
}

// Experiments returns the registry of all paper artifacts in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:         "figure1",
			Title:      "Age and ethnicity groups of the participants",
			PaperClaim: "494 participants; 53% aged 20-29; 57.2% Caucasian",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				return RenderFigure1(Figure1(ds)), nil
			},
		},
		{
			ID:         "table1",
			Title:      "Characteristics of the Live-scan devices",
			PaperClaim: "four 500-dpi optical sensors; Seek II has a 40.6x38.1mm capture area",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				return RenderTable1(ds), nil
			},
		},
		{
			ID:         "table2",
			Title:      "Notation table for similarity score computations",
			PaperClaim: "defines the DMG/DMI/DDMG/DDMI score sets",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				return RenderTable2(Table2(ds, sets)), nil
			},
		},
		{
			ID:         "table3",
			Title:      "Match scores for different match scenarios",
			PaperClaim: "DMG 1,976; DDMG 9,880; DMI 120,855; DDMI 483,420",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				return RenderTable3(Table3(sets)), nil
			},
		},
		{
			ID:         "figure2",
			Title:      "Genuine match scores ordered by magnitude vs Seek II gallery",
			PaperClaim: "same-sensor scores highest; ten-print probes lowest",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				f, err := Figure2(ds, sets, "D3")
				if err != nil {
					return "", err
				}
				return RenderFigure2(f), nil
			},
		},
		{
			ID:         "figure3",
			Title:      "DMG and DMI histograms, Cross Match Guardian R2",
			PaperClaim: "no impostor score above 7; a few genuine scores below 7",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				f, err := Figure3(ds, sets, "D0")
				if err != nil {
					return "", err
				}
				return RenderFigureHist("Figure 3", f), nil
			},
		},
		{
			ID:         "figure4",
			Title:      "DDMG and DDMI histograms, Guardian R2 vs digID Mini",
			PaperClaim: "greater genuine/impostor overlap with diverse sensors",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				f, err := Figure4(ds, sets, "D0", "D1")
				if err != nil {
					return "", err
				}
				return RenderFigureHist("Figure 4", f), nil
			},
		},
		{
			ID:         "table4",
			Title:      "Kendall rank correlation p-values",
			PaperClaim: "diagonal ~5e-242; some pairs indistinguishable (~0.6); asymmetric",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				t, err := Table4(ds, sets)
				if err != nil {
					return "", err
				}
				out := RenderTable4(t)
				out += fmt.Sprintf("mean |log10 p| asymmetry under gallery/probe swap: %.2f\n",
					Table4Asymmetry(t))
				return out, nil
			},
		},
		{
			ID:         "table5",
			Title:      "Interoperability FNMR matrix at FMR 0.01%",
			PaperClaim: "intra-device FNMR lower than inter-device (D1/D3 diagonal anomalies); D4 worst",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				m, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.0001})
				if err != nil {
					return "", err
				}
				return RenderFNMRMatrix("Table 5", m), nil
			},
		},
		{
			ID:         "table6",
			Title:      "FNMR matrix at FMR 0.1% for NFIQ quality < 3",
			PaperClaim: "good-quality subsets behave better; intra/inter differences become unpredictable",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				m, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.001, MaxQuality: nfiq.Good})
				if err != nil {
					return "", err
				}
				return RenderFNMRMatrix("Table 6", m), nil
			},
		},
		{
			ID:         "figure5",
			Title:      "Low genuine scores by (gallery, probe) NFIQ quality",
			PaperClaim: "cross-device low scores need both images high-quality to avoid FNMs",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				return RenderFigure5(Figure5(sets)), nil
			},
		},
		{
			ID:         "eer",
			Title:      "Per-device-pair equal error rates (extension)",
			PaperClaim: "within-sensor EER far below cross-sensor EER (Ross & Jain's 6-10% vs 23%)",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				m, err := EERMatrix(ds, sets)
				if err != nil {
					return "", err
				}
				return RenderEERMatrix(m), nil
			},
		},
		{
			ID:         "shard",
			Title:      "Sharded vs single-store 1:N identification (extension)",
			PaperClaim: "scatter-gather over a consistent-hash partition reproduces single-store rank-k exactly",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				n := ds.NumSubjects()
				if n > 150 {
					n = 150 // two exhaustive sweeps are O(n²) matcher calls
				}
				var results []ShardedIdentificationResult
				for _, probeID := range []string{"D0", "D1"} {
					r, err := ShardedIdentification(ds, "D0", probeID, n, 5, 3)
					if err != nil {
						return "", err
					}
					results = append(results, r)
				}
				return RenderShardedIdentification(results), nil
			},
		},
		{
			ID:         "index",
			Title:      "Indexed vs exhaustive 1:N identification (extension)",
			PaperClaim: "a triplet-index shortlist keeps rank-1 within ~2pp of the exhaustive scan",
			Run: func(ds *Dataset, sets *ScoreSets) (string, error) {
				n := ds.NumSubjects()
				if n > 200 {
					n = 200 // exhaustive CMC is O(n²) matcher calls
				}
				var results []IndexedIdentificationResult
				for _, probeID := range []string{"D0", "D1"} {
					r, err := IndexedIdentification(ds, "D0", probeID, n, 5, gallery.IndexOptions{})
					if err != nil {
						return "", err
					}
					results = append(results, r)
				}
				return RenderIndexedIdentification(results), nil
			},
		},
	}
}

// ExperimentByID looks an experiment up.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

package study

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"fpinterop/internal/population"
)

// Report is the machine-readable form of a full study run: every artifact
// of the paper's evaluation as structured data, for downstream plotting
// or regression tracking.
type Report struct {
	// Seed and Subjects identify the run.
	Seed     uint64 `json:"seed"`
	Subjects int    `json:"subjects"`
	// Table3 holds the score-set cardinalities.
	Table3 Table3Counts `json:"table3"`
	// Figure1 holds demographic counts keyed by bin label.
	Figure1Ages        map[string]int `json:"figure1Ages"`
	Figure1Ethnicities map[string]int `json:"figure1Ethnicities"`
	// Table4 holds Kendall results as log10 p-values (exact even when the
	// p-value underflows float64).
	Table4Rows   []string    `json:"table4Rows"`
	Table4Cols   []string    `json:"table4Cols"`
	Table4Log10P [][]float64 `json:"table4Log10P"`
	// Table5 and Table6 are the FNMR matrices.
	Table5 FNMRMatrixData `json:"table5"`
	Table6 FNMRMatrixData `json:"table6"`
	// Figure5 holds the low-score quality surfaces.
	Figure5 Figure5Data `json:"figure5"`
}

// BuildReport computes every artifact into a Report.
func BuildReport(ds *Dataset, sets *ScoreSets) (*Report, error) {
	r := &Report{
		Seed:     ds.Config.Seed,
		Subjects: ds.NumSubjects(),
		Table3:   Table3(sets),
	}
	f1 := Figure1(ds)
	r.Figure1Ages = make(map[string]int, len(f1.Ages))
	for g, n := range f1.Ages {
		r.Figure1Ages[g.String()] = n
	}
	r.Figure1Ethnicities = make(map[string]int, len(f1.Ethnicities))
	for g, n := range f1.Ethnicities {
		r.Figure1Ethnicities[g.String()] = n
	}
	t4, err := Table4(ds, sets)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	r.Table4Rows = t4.RowIDs
	r.Table4Cols = t4.ColIDs
	r.Table4Log10P = make([][]float64, len(t4.RowIDs))
	for i := range t4.RowIDs {
		r.Table4Log10P[i] = make([]float64, len(t4.ColIDs))
		for j := range t4.ColIDs {
			r.Table4Log10P[i][j] = t4.P[i][j].Log10
		}
	}
	r.Table5, err = FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.0001})
	if err != nil {
		return nil, fmt.Errorf("report: table 5: %w", err)
	}
	r.Table6, err = FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.001, MaxQuality: 3})
	if err != nil {
		return nil, fmt.Errorf("report: table 6: %w", err)
	}
	r.Figure5 = Figure5(sets)
	return r, nil
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("report: encode json: %w", err)
	}
	return nil
}

// WriteScoresCSV streams raw scores as CSV with full provenance — the
// exact artifact an analyst would load into R/pandas to re-derive every
// figure. Column order: set, subjectG, subjectP, deviceG, deviceP,
// sampleG, sampleP, qualityG, qualityP, score.
func WriteScoresCSV(w io.Writer, ds *Dataset, sets *ScoreSets) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"set", "subjectG", "subjectP", "deviceG", "deviceP",
		"sampleG", "sampleP", "qualityG", "qualityP", "score",
	}); err != nil {
		return fmt.Errorf("csv header: %w", err)
	}
	emit := func(name string, scores []Score) error {
		row := make([]string, 10)
		for _, s := range scores {
			row[0] = name
			row[1] = strconv.Itoa(s.SubjectG)
			row[2] = strconv.Itoa(s.SubjectP)
			row[3] = ds.Devices[s.DeviceG].ID
			row[4] = ds.Devices[s.DeviceP].ID
			row[5] = strconv.Itoa(s.SampleG)
			row[6] = strconv.Itoa(s.SampleP)
			row[7] = strconv.Itoa(int(s.QualityG))
			row[8] = strconv.Itoa(int(s.QualityP))
			row[9] = strconv.FormatFloat(s.Value, 'f', 4, 64)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("csv row: %w", err)
			}
		}
		return nil
	}
	for _, part := range []struct {
		name   string
		scores []Score
	}{
		{"DMG", sets.DMG},
		{"DDMG", sets.DDMG},
		{"DMI", sets.DMI},
		{"DDMI", sets.DDMI},
	} {
		if err := emit(part.name, part.scores); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csv flush: %w", err)
	}
	return nil
}

// DemographicsCSV writes the Figure 1 histograms as CSV.
func DemographicsCSV(w io.Writer, f Figure1Data) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dimension", "group", "count"}); err != nil {
		return fmt.Errorf("csv header: %w", err)
	}
	for _, g := range population.AgeGroups() {
		if err := cw.Write([]string{"age", g.String(), strconv.Itoa(f.Ages[g])}); err != nil {
			return fmt.Errorf("csv row: %w", err)
		}
	}
	for _, g := range population.Ethnicities() {
		if err := cw.Write([]string{"ethnicity", g.String(), strconv.Itoa(f.Ethnicities[g])}); err != nil {
			return fmt.Errorf("csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csv flush: %w", err)
	}
	return nil
}

package study

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildReportAndJSON(t *testing.T) {
	ds, sets := testStudy(t)
	r, err := BuildReport(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	if r.Subjects != ds.NumSubjects() || r.Seed != ds.Config.Seed {
		t.Fatal("report metadata wrong")
	}
	if r.Table3.DMG != len(sets.DMG) {
		t.Fatal("table 3 wrong")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Round-trip through encoding/json to prove the structure is valid
	// and self-consistent.
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Table3 != r.Table3 {
		t.Fatal("JSON round trip lost Table 3")
	}
	if len(back.Table4Log10P) != len(r.Table4Rows) {
		t.Fatal("JSON round trip lost Table 4")
	}
	// Diagonal p-values survive even though they underflow float64 as
	// probabilities.
	if back.Table4Log10P[0][0] > -20 {
		t.Fatalf("diagonal log10 p = %v, expected extreme", back.Table4Log10P[0][0])
	}
	total := 0
	for _, n := range back.Figure1Ages {
		total += n
	}
	if total != r.Subjects {
		t.Fatal("age histogram incomplete after round trip")
	}
}

func TestWriteScoresCSV(t *testing.T) {
	ds, sets := testStudy(t)
	var buf bytes.Buffer
	if err := WriteScoresCSV(&buf, ds, sets); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + len(sets.DMG) + len(sets.DDMG) + len(sets.DMI) + len(sets.DDMI)
	if len(rows) != wantRows {
		t.Fatalf("CSV has %d rows, want %d", len(rows), wantRows)
	}
	if rows[0][0] != "set" || rows[0][9] != "score" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	// First data row is a DMG score with a device ID in column 3.
	if rows[1][0] != "DMG" || !strings.HasPrefix(rows[1][3], "D") {
		t.Fatalf("first row wrong: %v", rows[1])
	}
}

func TestDemographicsCSV(t *testing.T) {
	ds, _ := testStudy(t)
	var buf bytes.Buffer
	if err := DemographicsCSV(&buf, Figure1(ds)); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 6 age bins + 6 ethnicity bins.
	if len(rows) != 13 {
		t.Fatalf("CSV has %d rows, want 13", len(rows))
	}
}

package study

import (
	"fmt"
	"math"
	"sort"

	"fpinterop/internal/stats"
)

// EERMatrixData holds per-device-pair equal error rates — the summary
// metric Ross & Jain used for the cross-sensor case study the paper's
// related-work section quotes (EER 23.13% across optical/capacitive
// sensors vs ~6–10% within one sensor).
type EERMatrixData struct {
	DeviceIDs []string
	// EER[i][j] is the equal error rate enrolling on device i, verifying
	// on device j.
	EER [][]float64
}

// EERMatrix computes per-device-pair equal error rates from the dense
// genuine set and the impostor sets. Each cell's partition is sorted
// once into a stats.ScoreDist (the EER itself is then a single merge
// sweep), and the independent cells run on the study's bounded worker
// pool.
func EERMatrix(ds *Dataset, sets *ScoreSets) (EERMatrixData, error) {
	nDev := ds.NumDevices()
	genuine := partitionByDevicePair(nDev, nil, sets.GenuineAll)
	impostor := partitionByDevicePair(nDev, nil, sets.DMI, sets.DDMI)
	out := EERMatrixData{EER: make([][]float64, nDev)}
	for i := 0; i < nDev; i++ {
		out.DeviceIDs = append(out.DeviceIDs, ds.Devices[i].ID)
		out.EER[i] = make([]float64, nDev)
	}
	err := forEachCell(nDev, ds.Config.Parallelism, func(i, j int) error {
		if len(genuine[i][j]) == 0 || len(impostor[i][j]) == 0 {
			return nil
		}
		// The partitions are cell-private, so sort them in place rather
		// than copying into NewScoreDist.
		sort.Float64s(genuine[i][j])
		sort.Float64s(impostor[i][j])
		rate, _, err := stats.ScoreDistFromSorted(genuine[i][j], impostor[i][j]).EER()
		if err != nil {
			return fmt.Errorf("EER cell (%d,%d): %w", i, j, err)
		}
		out.EER[i][j] = rate
		return nil
	})
	if err != nil {
		return EERMatrixData{}, err
	}
	return out, nil
}

// RenderEERMatrix prints the EER matrix.
func RenderEERMatrix(m EERMatrixData) string {
	out := "Equal error rate per (gallery device, probe device)\n    "
	for _, id := range m.DeviceIDs {
		out += fmt.Sprintf(" %8s", id)
	}
	out += "\n"
	for i, id := range m.DeviceIDs {
		out += fmt.Sprintf("%-4s", id)
		for j := range m.DeviceIDs {
			out += fmt.Sprintf(" %8.4f", m.EER[i][j])
		}
		out += "\n"
	}
	return out
}

// HabituationData quantifies the paper's habituation further-work bullet:
// do later samples from a participant image better than earlier ones?
type HabituationData struct {
	// MeanQualityBySample is the mean NFIQ class of live-scan impressions
	// for each sample index (lower is better).
	MeanQualityBySample []float64
	// ForwardMean is the mean genuine score matching sample 0 (gallery)
	// against sample 1 (probe) on the same live-scan device; ReverseMean
	// swaps the roles.
	ForwardMean, ReverseMean float64
}

// Habituation computes the habituation summary.
func Habituation(ds *Dataset, sets *ScoreSets) HabituationData {
	var out HabituationData
	sums := make([]float64, SamplesPerDevice)
	counts := make([]int, SamplesPerDevice)
	for s := 0; s < ds.NumSubjects(); s++ {
		for d := 0; d < ds.NumDevices(); d++ {
			if ds.Devices[d].Ink {
				continue
			}
			for k := 0; k < SamplesPerDevice; k++ {
				sums[k] += float64(ds.Impression(s, d, k).Quality)
				counts[k]++
			}
		}
	}
	out.MeanQualityBySample = make([]float64, SamplesPerDevice)
	for k := range sums {
		if counts[k] > 0 {
			out.MeanQualityBySample[k] = sums[k] / float64(counts[k])
		}
	}
	var fwd, rev []float64
	for _, s := range sets.GenuineAll {
		if !s.SameDevice() || ds.Devices[s.DeviceG].Ink {
			continue
		}
		switch {
		case s.SampleG == 0 && s.SampleP == 1:
			fwd = append(fwd, s.Value)
		case s.SampleG == 1 && s.SampleP == 0:
			rev = append(rev, s.Value)
		}
	}
	out.ForwardMean = stats.Mean(fwd)
	out.ReverseMean = stats.Mean(rev)
	return out
}

// Table4Asymmetry summarizes the surprising observation the paper makes
// about Table 4: the Kendall test results are not symmetric under
// swapping which device supplies the gallery. It returns the mean
// absolute difference of log10 p-values between cell (i,j) and the cell
// whose roles are swapped (j,i), over live-scan pairs present in both
// orientations.
func Table4Asymmetry(t Table4Data) float64 {
	idx := map[string]int{}
	for i, id := range t.RowIDs {
		idx[id] = i
	}
	var sum float64
	var n int
	for i, rowID := range t.RowIDs {
		for j, colID := range t.ColIDs {
			if rowID == colID {
				continue
			}
			ri, ok := idx[colID]
			if !ok {
				continue // ink column has no row
			}
			// Find the column of rowID in the swapped row.
			cj := -1
			for k, c := range t.ColIDs {
				if c == rowID {
					cj = k
					break
				}
			}
			if cj < 0 {
				continue
			}
			a := t.P[i][j].Log10
			b := t.P[ri][cj].Log10
			if math.IsInf(a, 0) || math.IsInf(b, 0) {
				continue
			}
			sum += math.Abs(a - b)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

package study

import (
	"strings"
	"testing"

	"fpinterop/internal/stats"
)

func TestEERMatrix(t *testing.T) {
	ds, sets := testStudy(t)
	m, err := EERMatrix(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.DeviceIDs) != 5 {
		t.Fatalf("matrix size %d", len(m.DeviceIDs))
	}
	// All EERs in [0, 0.5]; live-scan diagonal below the ink column mean
	// (Ross & Jain's within- vs cross-sensor EER gap).
	var diag, inkCol []float64
	d4, _ := ds.DeviceIndex("D4")
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if m.EER[i][j] < 0 || m.EER[i][j] > 0.5 {
				t.Fatalf("EER[%d][%d] = %v out of range", i, j, m.EER[i][j])
			}
		}
		diag = append(diag, m.EER[i][i])
		inkCol = append(inkCol, m.EER[i][d4])
	}
	if stats.Mean(diag) >= stats.Mean(inkCol) {
		t.Fatalf("diagonal EER %v not below ink column %v", stats.Mean(diag), stats.Mean(inkCol))
	}
	if out := RenderEERMatrix(m); !strings.Contains(out, "D3") {
		t.Fatal("rendering incomplete")
	}
}

func TestHabituation(t *testing.T) {
	ds, sets := testStudy(t)
	h := Habituation(ds, sets)
	if len(h.MeanQualityBySample) != SamplesPerDevice {
		t.Fatal("sample axis wrong")
	}
	// Habituation: second samples are at least as good (lower class).
	if h.MeanQualityBySample[1] > h.MeanQualityBySample[0]+0.05 {
		t.Fatalf("sample 1 quality %v worse than sample 0 %v",
			h.MeanQualityBySample[1], h.MeanQualityBySample[0])
	}
	if h.ForwardMean <= 0 || h.ReverseMean <= 0 {
		t.Fatal("missing genuine means")
	}
}

func TestTable4AsymmetryNonNegative(t *testing.T) {
	ds, sets := testStudy(t)
	t4, err := Table4(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	a := Table4Asymmetry(t4)
	if a < 0 {
		t.Fatalf("asymmetry %v negative", a)
	}
	// The paper found the test is NOT symmetric; with distinct sample
	// pairings per orientation some asymmetry must exist.
	if a == 0 {
		t.Fatal("perfectly symmetric Table 4 is implausible")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ds, sets := testStudy(t)
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("registry has %d artifacts, want 14 (Tables 1-6 + Figures 1-5 + EER matrix + sharded 1:N + indexed 1:N)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.PaperClaim == "" {
			t.Fatalf("experiment %s missing metadata", e.ID)
		}
		out, err := e.Run(ds, sets)
		if err != nil {
			t.Fatalf("experiment %s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Fatalf("experiment %s output too short: %q", e.ID, out)
		}
	}
	if _, ok := ExperimentByID("table5"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestShiftAnalysis(t *testing.T) {
	ds, sets := testStudy(t)
	a, err := Shift(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.GalleryIDs) != 4 {
		t.Fatalf("expected 4 live-scan galleries, got %d", len(a.GalleryIDs))
	}
	// Same-device scores dominate cross-device ones for every gallery:
	// effect size above chance across the board, and at least one device
	// significantly so even at test scale.
	significant := 0
	for i, id := range a.GalleryIDs {
		if a.Effect[i] < 0.5 {
			t.Fatalf("gallery %s: effect %v below chance", id, a.Effect[i])
		}
		if a.P[i].Log10 < -2 {
			significant++
		}
	}
	if significant == 0 {
		t.Fatal("no gallery shows a significant DMG/DDMG shift")
	}
	if out := RenderShift(a); len(out) < 80 {
		t.Fatal("rendering too short")
	}
}

func TestIdentificationCMC(t *testing.T) {
	ds, _ := testStudy(t)
	same, err := Identification(ds, "D0", "D0", 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if same.Probes != 20 || len(same.CMC) != 3 {
		t.Fatalf("shape wrong: %+v", same)
	}
	if same.CMC.RankOne() < 0.6 {
		t.Fatalf("same-device rank-1 %v too low", same.CMC.RankOne())
	}
	ink, err := Identification(ds, "D0", "D4", 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ink.CMC.RankOne() > same.CMC.RankOne() {
		t.Fatalf("ink probes identified better (%v) than same-device (%v)",
			ink.CMC.RankOne(), same.CMC.RankOne())
	}
	out := RenderIdentification([]IdentificationResult{same, ink})
	if len(out) < 80 {
		t.Fatal("rendering too short")
	}
	if _, err := Identification(ds, "DX", "D0", 5, 3); err == nil {
		t.Fatal("expected unknown-device error")
	}
	if _, err := Identification(ds, "D0", "DX", 5, 3); err == nil {
		t.Fatal("expected unknown-device error")
	}
}

func TestQualityByDevice(t *testing.T) {
	ds, _ := testStudy(t)
	q := QualityByDevice(ds)
	if len(q.DeviceIDs) != 5 {
		t.Fatalf("device count %d", len(q.DeviceIDs))
	}
	// Every impression accounted for.
	for d := range q.DeviceIDs {
		total := 0
		for _, c := range q.Counts[d] {
			total += c
		}
		if total != ds.NumSubjects()*SamplesPerDevice {
			t.Fatalf("device %d histogram covers %d impressions", d, total)
		}
	}
	// Ink measures worse than the best optical sensor.
	d0, _ := ds.DeviceIndex("D0")
	d4, _ := ds.DeviceIndex("D4")
	if q.Mean(d4) <= q.Mean(d0) {
		t.Fatalf("ink mean NFIQ %v not worse than optical %v", q.Mean(d4), q.Mean(d0))
	}
	if out := RenderQualityByDevice(q); len(out) < 100 {
		t.Fatal("rendering too short")
	}
}

func TestTable2Notation(t *testing.T) {
	ds, sets := testStudy(t)
	rows := Table2(ds, sets)
	if len(rows) != 4 {
		t.Fatalf("Table 2 has %d rows, want 4", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Subjects != ds.NumSubjects() {
			t.Fatalf("%s subjects %d", r.Name, r.Subjects)
		}
		if r.Samples != 2 {
			t.Fatalf("%s samples %d", r.Name, r.Samples)
		}
	}
	for _, want := range []string{"DMG", "DMI", "DDMG", "DDMI"} {
		if !names[want] {
			t.Fatalf("missing set %s", want)
		}
	}
	// DMG spans the four live-scan devices only (paper Table 3 row 1).
	for _, r := range rows {
		if r.Name == "DMG" && r.Devices != 4 {
			t.Fatalf("DMG devices %d, want 4", r.Devices)
		}
	}
	// Observed cardinalities must match Table 3, and medians separate
	// genuine sets from impostor sets.
	counts := Table3(sets)
	want := map[string]int{"DMG": counts.DMG, "DMI": counts.DMI, "DDMG": counts.DDMG, "DDMI": counts.DDMI}
	med := map[string]float64{}
	for _, r := range rows {
		if r.Observed != want[r.Name] {
			t.Fatalf("%s observed %d, want %d", r.Name, r.Observed, want[r.Name])
		}
		med[r.Name] = r.Median
	}
	if med["DMG"] <= med["DMI"] || med["DDMG"] <= med["DDMI"] {
		t.Fatalf("genuine medians %v/%v not above impostor medians %v/%v",
			med["DMG"], med["DDMG"], med["DMI"], med["DDMI"])
	}
	if out := RenderTable2(rows); len(out) < 100 {
		t.Fatal("rendering too short")
	}
}

func TestFigure2SeriesCounts(t *testing.T) {
	ds, sets := testStudy(t)
	f, err := Figure2(ds, sets, "D3")
	if err != nil {
		t.Fatal(err)
	}
	// Same-device series: one DMG score per subject. Cross-device: one
	// DDMG score per subject per probe device.
	n := ds.NumSubjects()
	for id, series := range f.SeriesByProbe {
		if len(series) != n {
			t.Fatalf("series %s has %d points, want %d", id, len(series), n)
		}
	}
}

package study

import (
	"fmt"
	"strings"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// IdentificationResult summarizes a closed-set 1:N identification
// experiment: gallery enrolled on one device, probes from another.
type IdentificationResult struct {
	GalleryDevice, ProbeDevice string
	// CMC[k-1] is the fraction of probes whose true identity ranked ≤ k.
	CMC gallery.CMC
	// Probes is the number of searches performed.
	Probes int
}

// Identification runs a closed-set identification experiment over the
// first n subjects of the dataset (all subjects when n <= 0): everyone is
// enrolled from their first sample on galleryID and searched with their
// second sample on probeID. Cost is O(n²) matcher calls — size n
// accordingly.
func Identification(ds *Dataset, galleryID, probeID string, n, maxRank int) (IdentificationResult, error) {
	gi, ok := ds.DeviceIndex(galleryID)
	if !ok {
		return IdentificationResult{}, fmt.Errorf("study: unknown gallery device %q", galleryID)
	}
	pi, ok := ds.DeviceIndex(probeID)
	if !ok {
		return IdentificationResult{}, fmt.Errorf("study: unknown probe device %q", probeID)
	}
	if n <= 0 || n > ds.NumSubjects() {
		n = ds.NumSubjects()
	}
	if maxRank <= 0 {
		maxRank = 5
	}
	store := gallery.New(ds.Config.Matcher)
	ids := make([]string, n)
	probes := make([]*minutiae.Template, n)
	for s := 0; s < n; s++ {
		ids[s] = fmt.Sprintf("subject-%04d", s)
		if err := store.Enroll(ids[s], galleryID, ds.Impression(s, gi, 0).Template); err != nil {
			return IdentificationResult{}, fmt.Errorf("study: identification enroll: %w", err)
		}
		probes[s] = ds.Impression(s, pi, 1).Template
	}
	cmc, err := gallery.ComputeCMC(store, probes, ids, maxRank)
	if err != nil {
		return IdentificationResult{}, fmt.Errorf("study: identification CMC: %w", err)
	}
	return IdentificationResult{
		GalleryDevice: galleryID,
		ProbeDevice:   probeID,
		CMC:           cmc,
		Probes:        n,
	}, nil
}

// RenderIdentification prints the CMC summary.
func RenderIdentification(results []IdentificationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Closed-set identification (CMC), gallery device -> probe device\n")
	fmt.Fprintf(&b, "%-12s %8s", "Pair", "probes")
	if len(results) > 0 {
		for k := 1; k <= len(results[0].CMC); k++ {
			fmt.Fprintf(&b, "  rank-%d", k)
		}
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %8d", r.GalleryDevice+"->"+r.ProbeDevice, r.Probes)
		for _, v := range r.CMC {
			fmt.Fprintf(&b, "  %6.3f", v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

package study

import (
	"context"
	"fmt"
	"strings"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// IdentificationResult summarizes a closed-set 1:N identification
// experiment: gallery enrolled on one device, probes from another.
type IdentificationResult struct {
	GalleryDevice, ProbeDevice string
	// CMC[k-1] is the fraction of probes whose true identity ranked ≤ k.
	CMC gallery.CMC
	// Probes is the number of searches performed.
	Probes int
}

// identificationStore enrolls the first n subjects (first sample on the
// gallery device) and returns the store plus matching second-sample
// probes from the probe device. The store's scan parallelism mirrors
// Config.Parallelism.
func identificationStore(ds *Dataset, galleryID, probeID string, n int) (*gallery.Store, []*minutiae.Template, []string, error) {
	gi, ok := ds.DeviceIndex(galleryID)
	if !ok {
		return nil, nil, nil, fmt.Errorf("study: unknown gallery device %q", galleryID)
	}
	pi, ok := ds.DeviceIndex(probeID)
	if !ok {
		return nil, nil, nil, fmt.Errorf("study: unknown probe device %q", probeID)
	}
	store := gallery.New(ds.Config.Matcher)
	store.SetParallelism(ds.Config.Parallelism)
	ids := make([]string, n)
	probes := make([]*minutiae.Template, n)
	for s := 0; s < n; s++ {
		ids[s] = fmt.Sprintf("subject-%04d", s)
		if err := store.Enroll(ids[s], galleryID, ds.Impression(s, gi, 0).Template); err != nil {
			return nil, nil, nil, fmt.Errorf("study: identification enroll: %w", err)
		}
		probes[s] = ds.Impression(s, pi, 1).Template
	}
	return store, probes, ids, nil
}

// Identification runs a closed-set identification experiment over the
// first n subjects of the dataset (all subjects when n <= 0): everyone is
// enrolled from their first sample on galleryID and searched with their
// second sample on probeID. Cost is O(n²) matcher calls — size n
// accordingly.
func Identification(ds *Dataset, galleryID, probeID string, n, maxRank int) (IdentificationResult, error) {
	if n <= 0 || n > ds.NumSubjects() {
		n = ds.NumSubjects()
	}
	if maxRank <= 0 {
		maxRank = 5
	}
	store, probes, ids, err := identificationStore(ds, galleryID, probeID, n)
	if err != nil {
		return IdentificationResult{}, err
	}
	cmc, err := gallery.ComputeCMCContext(context.Background(), store, probes, ids, maxRank)
	if err != nil {
		return IdentificationResult{}, fmt.Errorf("study: identification CMC: %w", err)
	}
	return IdentificationResult{
		GalleryDevice: galleryID,
		ProbeDevice:   probeID,
		CMC:           cmc,
		Probes:        n,
	}, nil
}

// IndexedIdentificationResult contrasts closed-set identification served
// by the triplet-index shortlist against the exhaustive scan on the
// same gallery and probes — the recall/speed trade-off of the retrieval
// stage.
type IndexedIdentificationResult struct {
	GalleryDevice, ProbeDevice string
	// Exhaustive and Indexed are the two CMC curves.
	Exhaustive, Indexed gallery.CMC
	// Probes is the number of searches, Gallery the enrollment count.
	Probes, Gallery int
	// MeanShortlist is the mean index shortlist size across searches.
	MeanShortlist float64
	// MeanScanned is the mean number of full matcher comparisons per
	// indexed search (the exhaustive path scans Gallery).
	MeanScanned float64
	// Fallbacks counts searches the recall guard sent to the exhaustive
	// path.
	Fallbacks int
}

// IndexedIdentification runs the indexed-vs-exhaustive comparison over
// the first n subjects (all when n <= 0). The exhaustive CMC uses the
// full-ranking path; the indexed CMC takes each probe's rank from the
// top-maxRank candidates the shortlist search returns (a miss beyond
// the shortlist counts as unidentified, which is exactly the accuracy
// cost the index trades for speed).
func IndexedIdentification(ds *Dataset, galleryID, probeID string, n, maxRank int, opt gallery.IndexOptions) (IndexedIdentificationResult, error) {
	if n <= 0 || n > ds.NumSubjects() {
		n = ds.NumSubjects()
	}
	if maxRank <= 0 {
		maxRank = 5
	}
	store, probes, ids, err := identificationStore(ds, galleryID, probeID, n)
	if err != nil {
		return IndexedIdentificationResult{}, err
	}
	exhaustive, err := gallery.ComputeCMCContext(context.Background(), store, probes, ids, maxRank)
	if err != nil {
		return IndexedIdentificationResult{}, fmt.Errorf("study: exhaustive CMC: %w", err)
	}
	if err := store.EnableIndex(opt); err != nil {
		return IndexedIdentificationResult{}, fmt.Errorf("study: enable index: %w", err)
	}
	out := IndexedIdentificationResult{
		GalleryDevice: galleryID,
		ProbeDevice:   probeID,
		Exhaustive:    exhaustive,
		Probes:        n,
		Gallery:       store.Len(),
	}
	hits := make([]int, maxRank)
	var shortlistSum, scannedSum int
	for i, probe := range probes {
		cands, stats, err := store.IdentifyDetailedContext(context.Background(), probe, maxRank)
		if err != nil {
			return IndexedIdentificationResult{}, fmt.Errorf("study: indexed identify: %w", err)
		}
		shortlistSum += stats.Shortlist
		scannedSum += stats.Scanned
		if !stats.Indexed {
			out.Fallbacks++
		}
		for r, c := range cands {
			if c.ID == ids[i] {
				hits[r]++
				break
			}
		}
	}
	out.Indexed = make(gallery.CMC, maxRank)
	cum := 0
	for k := 0; k < maxRank; k++ {
		cum += hits[k]
		out.Indexed[k] = float64(cum) / float64(n)
	}
	out.MeanShortlist = float64(shortlistSum) / float64(n)
	out.MeanScanned = float64(scannedSum) / float64(n)
	return out, nil
}

// RenderIndexedIdentification prints the indexed-vs-exhaustive
// comparison in the EXPERIMENTS table style.
func RenderIndexedIdentification(results []IndexedIdentificationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Indexed vs exhaustive closed-set identification (triplet-index shortlist)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %12s %12s %8s %10s %10s %6s\n",
		"Pair", "gallery", "probes", "exh rank-1", "idx rank-1", "Δ (pp)", "shortlist", "scanned", "fallb")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %8d %8d %12.3f %12.3f %8.1f %10.1f %10.1f %6d\n",
			r.GalleryDevice+"->"+r.ProbeDevice, r.Gallery, r.Probes,
			r.Exhaustive.RankOne(), r.Indexed.RankOne(),
			100*(r.Exhaustive.RankOne()-r.Indexed.RankOne()),
			r.MeanShortlist, r.MeanScanned, r.Fallbacks)
	}
	return b.String()
}

// RenderIdentification prints the CMC summary.
func RenderIdentification(results []IdentificationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Closed-set identification (CMC), gallery device -> probe device\n")
	fmt.Fprintf(&b, "%-12s %8s", "Pair", "probes")
	if len(results) > 0 {
		for k := 1; k <= len(results[0].CMC); k++ {
			fmt.Fprintf(&b, "  rank-%d", k)
		}
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %8d", r.GalleryDevice+"->"+r.ProbeDevice, r.Probes)
		for _, v := range r.CMC {
			fmt.Fprintf(&b, "  %6.3f", v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

package study

import (
	"fmt"
	"strings"
)

// QualityDistribution is the per-device NFIQ class histogram over all
// captured impressions — the acquisition-quality character of each device
// ("it is important to note that the sensors in our study are
// significantly higher in quality", paper §II).
type QualityDistribution struct {
	DeviceIDs []string
	// Counts[d][q-1] is the number of impressions of device d with NFIQ
	// class q.
	Counts [][5]int
}

// QualityByDevice tallies NFIQ classes per device across the dataset.
func QualityByDevice(ds *Dataset) QualityDistribution {
	out := QualityDistribution{Counts: make([][5]int, ds.NumDevices())}
	for d := 0; d < ds.NumDevices(); d++ {
		out.DeviceIDs = append(out.DeviceIDs, ds.Devices[d].ID)
	}
	for s := 0; s < ds.NumSubjects(); s++ {
		for d := 0; d < ds.NumDevices(); d++ {
			for k := 0; k < SamplesPerDevice; k++ {
				q := ds.Impression(s, d, k).Quality
				if q.Valid() {
					out.Counts[d][q-1]++
				}
			}
		}
	}
	return out
}

// Mean returns the mean NFIQ class for device index d (lower is better).
func (q QualityDistribution) Mean(d int) float64 {
	total, n := 0, 0
	for i, c := range q.Counts[d] {
		total += (i + 1) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// RenderQualityByDevice prints the distribution.
func RenderQualityByDevice(q QualityDistribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFIQ distribution per device (all impressions)\n")
	fmt.Fprintf(&b, "%-6s %6s %6s %6s %6s %6s %8s\n", "Dev", "1", "2", "3", "4", "5", "mean")
	for d, id := range q.DeviceIDs {
		fmt.Fprintf(&b, "%-6s", id)
		for c := 0; c < 5; c++ {
			fmt.Fprintf(&b, " %6d", q.Counts[d][c])
		}
		fmt.Fprintf(&b, " %8.2f\n", q.Mean(d))
	}
	return b.String()
}

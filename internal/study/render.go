package study

import (
	"fmt"
	"strings"

	"fpinterop/internal/population"
)

// RenderTable1 prints the device characteristics table (the paper's
// Table 1).
func RenderTable1(ds *Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Live-scan devices used for fingerprint acquisition\n")
	fmt.Fprintf(&b, "%-4s %-42s %-6s %-12s %-12s\n", "Dev", "Model", "dpi", "Image (px)", "Area (mm)")
	for _, d := range ds.Devices {
		fmt.Fprintf(&b, "%-4s %-42s %-6d %dx%-7d %.1fx%.1f\n",
			d.ID, d.Model, d.DPI, d.ImageW, d.ImageH, d.PlatenW, d.PlatenH)
	}
	return b.String()
}

// RenderFigure1 prints the demographic histograms.
func RenderFigure1(f Figure1Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Age and ethnicity groups of the %d participants\n", f.Total)
	fmt.Fprintf(&b, "Age groups:\n")
	for _, g := range population.AgeGroups() {
		n := f.Ages[g]
		fmt.Fprintf(&b, "  %-6s %4d (%5.1f%%) %s\n", g, n,
			100*float64(n)/float64(f.Total), bar(n, f.Total))
	}
	fmt.Fprintf(&b, "Ethnicity groups:\n")
	for _, g := range population.Ethnicities() {
		n := f.Ethnicities[g]
		fmt.Fprintf(&b, "  %-17s %4d (%5.1f%%) %s\n", g, n,
			100*float64(n)/float64(f.Total), bar(n, f.Total))
	}
	return b.String()
}

func bar(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 40 / total
	return strings.Repeat("#", w)
}

// RenderTable3 prints the score-set cardinalities.
func RenderTable3(t Table3Counts) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Match scores for different match scenarios\n")
	fmt.Fprintf(&b, "%-8s %12s\n", "Set", "Scores")
	fmt.Fprintf(&b, "%-8s %12d\n", "DMG", t.DMG)
	fmt.Fprintf(&b, "%-8s %12d\n", "DDMG", t.DDMG)
	fmt.Fprintf(&b, "%-8s %12d\n", "DMI", t.DMI)
	fmt.Fprintf(&b, "%-8s %12d\n", "DDMI", t.DDMI)
	return b.String()
}

// RenderFigure2 prints the ordered genuine score curves as quantile
// summaries per probe device.
func RenderFigure2(f Figure2Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Genuine match scores (DDMG) ordered by magnitude,\n")
	fmt.Fprintf(&b, "for different probe devices vs %s gallery\n", f.GalleryDevice)
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %8s\n", "Probe", "max", "p75", "median", "p25", "min")
	ids := make([]string, 0, len(f.SeriesByProbe))
	for id := range f.SeriesByProbe {
		ids = append(ids, id)
	}
	sortStrings(ids)
	for _, id := range ids {
		s := f.SeriesByProbe[id] // sorted descending
		if len(s) == 0 {
			continue
		}
		q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
		fmt.Fprintf(&b, "%-6s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			id, s[0], q(0.25), q(0.5), q(0.75), s[len(s)-1])
	}
	return b.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RenderFigureHist prints a genuine/impostor histogram pair (Figures 3
// and 4).
func RenderFigureHist(title string, f FigureHistData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (gallery %s, probe %s)\n", title, f.GalleryDevice, f.ProbeDevice)
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "Score bin", "Genuine", "Impostor")
	for i := range f.Genuine.Counts {
		lo, hi := f.Genuine.BinRange(i)
		g := f.Genuine.Counts[i]
		im := f.Impostor.Counts[i]
		if g == 0 && im == 0 {
			continue
		}
		fmt.Fprintf(&b, "%4.0f-%-5.0f %10d %10d\n", lo, hi, g, im)
	}
	return b.String()
}

// RenderTable4 prints the Kendall p-value matrix.
func RenderTable4(t Table4Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: p-values from Kendall's rank correlation statistical test\n")
	fmt.Fprintf(&b, "%-4s", "")
	for _, c := range t.ColIDs {
		fmt.Fprintf(&b, " %12s", "DX-"+c)
	}
	fmt.Fprintf(&b, "\n")
	for i, r := range t.RowIDs {
		fmt.Fprintf(&b, "%-4s", r)
		for j := range t.ColIDs {
			fmt.Fprintf(&b, " %12s", t.P[i][j].String())
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// RenderFNMRMatrix prints an interoperability FNMR matrix (Tables 5/6).
func RenderFNMRMatrix(title string, m FNMRMatrixData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (FNMR at fixed FMR of %.4g%%)\n", title, m.TargetFMR*100)
	fmt.Fprintf(&b, "%-4s", "")
	for _, id := range m.DeviceIDs {
		fmt.Fprintf(&b, " %10s", id)
	}
	fmt.Fprintf(&b, "\n")
	for i, id := range m.DeviceIDs {
		fmt.Fprintf(&b, "%-4s", id)
		for j := range m.DeviceIDs {
			fmt.Fprintf(&b, " %10.2e", m.FNMR[i][j])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// RenderFigure5 prints the low-score quality surfaces.
func RenderFigure5(f Figure5Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Genuine match scores below %.0f by (gallery NFIQ, probe NFIQ)\n", f.Threshold)
	render := func(name string, m [5][5]int) {
		fmt.Fprintf(&b, "%s:\n      probe→ ", name)
		for q := 1; q <= 5; q++ {
			fmt.Fprintf(&b, "%6d", q)
		}
		fmt.Fprintf(&b, "\n")
		for qg := 0; qg < 5; qg++ {
			fmt.Fprintf(&b, "  gallery %d: ", qg+1)
			for qp := 0; qp < 5; qp++ {
				fmt.Fprintf(&b, "%6d", m[qg][qp])
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	render("(a) same device", f.SameDevice)
	render("(b) diverse devices", f.CrossDevice)
	return b.String()
}

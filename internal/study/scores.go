package study

import (
	"fmt"
	"sync"

	"fpinterop/internal/match"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/rng"
)

// Score is one similarity comparison with its full provenance.
type Score struct {
	// SubjectG, SubjectP identify the gallery and probe subjects (equal
	// for genuine comparisons).
	SubjectG, SubjectP int
	// DeviceG, DeviceP are device indices into Dataset.Devices.
	DeviceG, DeviceP int
	// SampleG, SampleP are the sample indices used.
	SampleG, SampleP int
	// QualityG, QualityP are the NFIQ classes of the two impressions.
	QualityG, QualityP nfiq.Class
	// Value is the matcher similarity score.
	Value float64
}

// Genuine reports whether the comparison is a genuine (same-subject) one.
func (s Score) Genuine() bool { return s.SubjectG == s.SubjectP }

// SameDevice reports whether gallery and probe came from one device.
func (s Score) SameDevice() bool { return s.DeviceG == s.DeviceP }

// ScoreSets holds the four score populations of the paper's Table 2/3.
type ScoreSets struct {
	// DMG: Device Match Genuine — same subject, same live-scan device,
	// first sample enrolls, second verifies (494 × 4 = 1,976).
	DMG []Score
	// DDMG: Diverse Device Match Genuine — same subject, all ordered
	// device pairs X≠Y (494 × 20 = 9,880).
	DDMG []Score
	// DMI: Device Match Impostor — different subjects, same device
	// (random subset, paper size 120,855).
	DMI []Score
	// DDMI: Diverse Device Match Impostor — different subjects, different
	// devices (random subset, paper size 483,420).
	DDMI []Score
	// GenuineAll holds every genuine ordered device pair × sample
	// combination — the denser set the FNMR matrices (Tables 5–6) need
	// for rate resolution.
	GenuineAll []Score
}

// comparison is one queued match job.
type comparison struct {
	subjG, devG, sampG int
	subjP, devP, sampP int
}

// GenerateScores runs every comparison of the study design against the
// dataset's matcher and returns the four score sets. Deterministic given
// the dataset (impostor subsampling is keyed by the study seed) and
// parallelized.
func GenerateScores(ds *Dataset) (*ScoreSets, error) {
	cfg := ds.Config
	nSubj := ds.NumSubjects()
	nDev := ds.NumDevices()
	if nSubj == 0 {
		return nil, fmt.Errorf("study: empty dataset")
	}

	var jobs []comparison
	var kinds []int // parallel: 0=DMG 1=DDMG 2=DMI 3=DDMI 4=GenuineAll

	// DMG: same live-scan device, sample 0 enrolls, sample 1 verifies.
	for s := 0; s < nSubj; s++ {
		for d := 0; d < nDev; d++ {
			if ds.Devices[d].Ink {
				continue
			}
			jobs = append(jobs, comparison{s, d, 0, s, d, 1})
			kinds = append(kinds, 0)
		}
	}
	// DDMG: ordered device pairs X≠Y, sample 0 vs sample 0.
	for s := 0; s < nSubj; s++ {
		for dg := 0; dg < nDev; dg++ {
			for dp := 0; dp < nDev; dp++ {
				if dg == dp {
					continue
				}
				jobs = append(jobs, comparison{s, dg, 0, s, dp, 0})
				kinds = append(kinds, 1)
			}
		}
	}
	// GenuineAll: every ordered device pair (including diagonal) and every
	// sample combination not already covered by identical (gallery, probe)
	// impressions. Used by the FNMR matrices.
	for s := 0; s < nSubj; s++ {
		for dg := 0; dg < nDev; dg++ {
			for dp := 0; dp < nDev; dp++ {
				for sg := 0; sg < SamplesPerDevice; sg++ {
					for sp := 0; sp < SamplesPerDevice; sp++ {
						if dg == dp && sg == sp {
							continue // identical impression
						}
						jobs = append(jobs, comparison{s, dg, sg, s, dp, sp})
						kinds = append(kinds, 4)
					}
				}
			}
		}
	}
	// Impostor subsets: uniform random (device, subject pair) draws keyed
	// by the study seed.
	isrc := rng.New(cfg.Seed).Child("impostor")
	maxDMI := cfg.MaxDMI
	maxDDMI := cfg.MaxDDMI
	if pairLimit := nSubj * (nSubj - 1) * nDev; maxDMI > pairLimit {
		maxDMI = pairLimit
	}
	if pairLimit := nSubj * (nSubj - 1) * nDev * (nDev - 1); maxDDMI > pairLimit {
		maxDDMI = pairLimit
	}
	for i := 0; i < maxDMI; i++ {
		a := isrc.Intn(nSubj)
		b := isrc.Intn(nSubj - 1)
		if b >= a {
			b++
		}
		d := isrc.Intn(nDev)
		jobs = append(jobs, comparison{a, d, 0, b, d, 0})
		kinds = append(kinds, 2)
	}
	for i := 0; i < maxDDMI; i++ {
		a := isrc.Intn(nSubj)
		b := isrc.Intn(nSubj - 1)
		if b >= a {
			b++
		}
		dg := isrc.Intn(nDev)
		dp := isrc.Intn(nDev - 1)
		if dp >= dg {
			dp++
		}
		jobs = append(jobs, comparison{a, dg, 0, b, dp, 0})
		kinds = append(kinds, 3)
	}

	scores := make([]Score, len(jobs))
	// When the study runs the primary matcher, each worker holds one
	// pooled match session for its whole chunk: the hot path then does
	// zero allocations per comparison (only Score is read, so the
	// session-scoped Result aliasing is safe).
	hough, _ := cfg.Matcher.(*match.HoughMatcher)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   int
	)
	chunk := (len(jobs) + cfg.Parallelism - 1) / cfg.Parallelism
	if chunk < 1 {
		chunk = 1
	}
	for start := 0; start < len(jobs); start += chunk {
		end := start + chunk
		if end > len(jobs) {
			end = len(jobs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var sess *match.Session
			if hough != nil {
				sess = match.AcquireSession(hough)
				defer sess.Release()
			}
			for i := lo; i < hi; i++ {
				j := jobs[i]
				g := ds.Impression(j.subjG, j.devG, j.sampG)
				p := ds.Impression(j.subjP, j.devP, j.sampP)
				var res match.Result
				var err error
				if sess != nil {
					res, err = sess.Match(g.Template, p.Template)
				} else {
					res, err = cfg.Matcher.Match(g.Template, p.Template)
				}
				if err != nil {
					// Keep working through the chunk: a bailing worker
					// would silently leave every remaining comparison as a
					// zero Score while reporting only the first error.
					mu.Lock()
					failed++
					if firstErr == nil {
						firstErr = fmt.Errorf("subject %d device %d sample %d vs subject %d device %d sample %d: %w",
							j.subjG, j.devG, j.sampG, j.subjP, j.devP, j.sampP, err)
					}
					mu.Unlock()
					continue
				}
				scores[i] = Score{
					SubjectG: j.subjG, SubjectP: j.subjP,
					DeviceG: j.devG, DeviceP: j.devP,
					SampleG: j.sampG, SampleP: j.sampP,
					QualityG: g.Quality, QualityP: p.Quality,
					Value: res.Score,
				}
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("study: score generation: %d of %d comparisons failed, first: %w",
			failed, len(jobs), firstErr)
	}

	sets := &ScoreSets{}
	for i, k := range kinds {
		switch k {
		case 0:
			sets.DMG = append(sets.DMG, scores[i])
		case 1:
			sets.DDMG = append(sets.DDMG, scores[i])
		case 2:
			sets.DMI = append(sets.DMI, scores[i])
		case 3:
			sets.DDMI = append(sets.DDMI, scores[i])
		case 4:
			sets.GenuineAll = append(sets.GenuineAll, scores[i])
		}
	}
	return sets, nil
}

// Values extracts the raw similarity values from a score slice.
func Values(scores []Score) []float64 {
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = s.Value
	}
	return out
}

// FilterScores returns the scores for which keep returns true.
func FilterScores(scores []Score, keep func(Score) bool) []Score {
	var out []Score
	for _, s := range scores {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

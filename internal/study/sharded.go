package study

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/shard"
)

// ShardedIdentificationResult contrasts closed-set identification served
// by a scatter-gather shard router against a single store holding the
// same enrollments. With exhaustive per-shard search the router merge is
// provably equivalent, so Mismatches is the reproduction check: any
// non-zero value means the partition/merge machinery changed results.
type ShardedIdentificationResult struct {
	GalleryDevice, ProbeDevice string
	// Shards is the router's shard count; ShardSizes the per-shard
	// enrollment counts the ring produced.
	Shards     int
	ShardSizes []int
	// Gallery is the enrollment count, Probes the number of searches.
	Gallery, Probes int
	// Single and Sharded are the CMC curves of the two serving paths.
	Single, Sharded gallery.CMC
	// Mismatches counts probes whose top-k candidate lists (IDs, scores,
	// order) were not bit-identical across the two paths.
	Mismatches int
	// SingleNanos and ShardedNanos are total identification latencies.
	SingleNanos, ShardedNanos int64
}

// ShardedIdentification enrolls the first n subjects (gallery device,
// first sample) into both a single store and a router over `shards`
// local shards, searches every second-sample probe through both, and
// verifies the merged global top-k is bit-identical. Cost is two
// exhaustive O(n²) sweeps — size n accordingly.
func ShardedIdentification(ds *Dataset, galleryID, probeID string, n, maxRank, shards int) (ShardedIdentificationResult, error) {
	if n <= 0 || n > ds.NumSubjects() {
		n = ds.NumSubjects()
	}
	if maxRank <= 0 {
		maxRank = 5
	}
	if shards <= 0 {
		shards = 3
	}
	single, probes, ids, err := identificationStore(ds, galleryID, probeID, n)
	if err != nil {
		return ShardedIdentificationResult{}, err
	}
	backends := make([]shard.Backend, shards)
	items := make([]shard.Enrollment, n)
	for i := range backends {
		st := gallery.New(ds.Config.Matcher)
		st.SetParallelism(ds.Config.Parallelism)
		backends[i] = shard.NewLocal(fmt.Sprintf("shard-%d", i), st)
	}
	router, err := shard.New(backends, shard.Options{})
	if err != nil {
		return ShardedIdentificationResult{}, err
	}
	for s := 0; s < n; s++ {
		items[s] = shard.Enrollment{ID: ids[s], DeviceID: galleryID, Template: ds.Impression(s, mustDeviceIndex(ds, galleryID), 0).Template}
	}
	if err := router.EnrollBatch(context.Background(), items); err != nil {
		return ShardedIdentificationResult{}, fmt.Errorf("study: sharded enroll: %w", err)
	}

	out := ShardedIdentificationResult{
		GalleryDevice: galleryID,
		ProbeDevice:   probeID,
		Shards:        shards,
		Gallery:       n,
		Probes:        n,
	}
	for _, b := range router.Backends() {
		sz, err := b.Len(context.Background())
		if err != nil {
			return ShardedIdentificationResult{}, err
		}
		out.ShardSizes = append(out.ShardSizes, sz)
	}

	singleHits := make([]int, maxRank)
	shardedHits := make([]int, maxRank)
	for i, probe := range probes {
		t0 := time.Now()
		want, err := single.IdentifyContext(context.Background(), probe, maxRank)
		if err != nil {
			return ShardedIdentificationResult{}, fmt.Errorf("study: single identify: %w", err)
		}
		out.SingleNanos += time.Since(t0).Nanoseconds()
		t1 := time.Now()
		got, stats, err := router.IdentifyDetailed(context.Background(), probe, maxRank)
		if err != nil {
			return ShardedIdentificationResult{}, fmt.Errorf("study: sharded identify: %w", err)
		}
		out.ShardedNanos += time.Since(t1).Nanoseconds()
		if stats.Partial {
			return ShardedIdentificationResult{}, fmt.Errorf("study: sharded search had partial coverage: %+v", stats)
		}
		identical := len(got) == len(want)
		if identical {
			for c := range want {
				if got[c] != want[c] {
					identical = false
					break
				}
			}
		}
		if !identical {
			out.Mismatches++
		}
		for r, c := range want {
			if c.ID == ids[i] {
				singleHits[r]++
				break
			}
		}
		for r, c := range got {
			if c.ID == ids[i] {
				shardedHits[r]++
				break
			}
		}
	}
	out.Single = cumulate(singleHits, n)
	out.Sharded = cumulate(shardedHits, n)
	return out, nil
}

// cumulate turns a rank-hit histogram into a CMC curve.
func cumulate(hits []int, probes int) gallery.CMC {
	out := make(gallery.CMC, len(hits))
	cum := 0
	for k := range hits {
		cum += hits[k]
		out[k] = float64(cum) / float64(probes)
	}
	return out
}

// mustDeviceIndex resolves a device the caller has already validated
// through identificationStore.
func mustDeviceIndex(ds *Dataset, id string) int {
	i, _ := ds.DeviceIndex(id)
	return i
}

// RenderShardedIdentification prints the sharded-vs-single comparison in
// the EXPERIMENTS table style. Latencies are per-search means; the
// equality column is the load-bearing number.
func RenderShardedIdentification(results []ShardedIdentificationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded vs single-store closed-set identification (scatter-gather router)\n")
	fmt.Fprintf(&b, "%-10s %7s %8s %8s %13s %14s %10s %12s %12s  %s\n",
		"Pair", "shards", "gallery", "probes", "rank1 single", "rank1 sharded", "mismatch", "p.single", "p.sharded", "shard sizes")
	for _, r := range results {
		sizes := make([]string, len(r.ShardSizes))
		for i, s := range r.ShardSizes {
			sizes[i] = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&b, "%-10s %7d %8d %8d %13.3f %14.3f %10d %12s %12s  %s\n",
			r.GalleryDevice+"->"+r.ProbeDevice, r.Shards, r.Gallery, r.Probes,
			r.Single.RankOne(), r.Sharded.RankOne(), r.Mismatches,
			meanLatency(r.SingleNanos, r.Probes), meanLatency(r.ShardedNanos, r.Probes),
			strings.Join(sizes, "/"))
	}
	return b.String()
}

func meanLatency(totalNanos int64, probes int) string {
	if probes == 0 {
		return "-"
	}
	return time.Duration(totalNanos / int64(probes)).Round(10 * time.Microsecond).String()
}

package study

import "testing"

func TestShardedIdentificationMatchesSingleStore(t *testing.T) {
	ds, err := BuildDataset(Config{Seed: 9, Subjects: 12, MaxDMI: 1, MaxDDMI: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, probeID := range []string{"D0", "D1"} {
		r, err := ShardedIdentification(ds, "D0", probeID, 0, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Mismatches != 0 {
			t.Fatalf("%s probes: %d of %d sharded searches diverged from the single store",
				probeID, r.Mismatches, r.Probes)
		}
		if len(r.Single) != len(r.Sharded) {
			t.Fatalf("CMC lengths differ: %d vs %d", len(r.Single), len(r.Sharded))
		}
		for k := range r.Single {
			if r.Single[k] != r.Sharded[k] {
				t.Fatalf("%s probes: CMC diverged at rank %d: %v vs %v",
					probeID, k+1, r.Single[k], r.Sharded[k])
			}
		}
		if len(r.ShardSizes) != 3 {
			t.Fatalf("shard sizes %v", r.ShardSizes)
		}
		total := 0
		for _, s := range r.ShardSizes {
			total += s
		}
		if total != r.Gallery {
			t.Fatalf("shard sizes %v do not sum to gallery %d", r.ShardSizes, r.Gallery)
		}
	}
}

func TestShardExperimentRegistered(t *testing.T) {
	e, ok := ExperimentByID("shard")
	if !ok {
		t.Fatal("shard experiment not in registry")
	}
	ds, err := BuildDataset(Config{Seed: 5, Subjects: 8, MaxDMI: 1, MaxDDMI: 1})
	if err != nil {
		t.Fatal(err)
	}
	sets, err := GenerateScores(ds)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty artifact")
	}
}

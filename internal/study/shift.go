package study

import (
	"fmt"
	"strings"

	"fpinterop/internal/stats"
)

// ShiftAnalysis tests, per gallery device, whether the cross-device
// genuine score distribution is significantly shifted below the
// same-device one — a direct hypothesis test of the paper's headline
// claim, complementing the Kendall correlation view of Table 4.
type ShiftAnalysis struct {
	// GalleryIDs lists the live-scan gallery devices analysed.
	GalleryIDs []string
	// P[i] is the two-sided Mann–Whitney p-value comparing DMG (same
	// device) against DDMG (diverse devices) for gallery device i.
	P []stats.PValue
	// Effect[i] is the common-language effect size: the probability a
	// same-device genuine score exceeds a cross-device one.
	Effect []float64
}

// Shift runs the analysis.
func Shift(ds *Dataset, sets *ScoreSets) (ShiftAnalysis, error) {
	var out ShiftAnalysis
	for di := 0; di < ds.NumDevices(); di++ {
		if ds.Devices[di].Ink {
			continue
		}
		var same, cross []float64
		for _, s := range sets.DMG {
			if s.DeviceG == di {
				same = append(same, s.Value)
			}
		}
		for _, s := range sets.DDMG {
			if s.DeviceG == di {
				cross = append(cross, s.Value)
			}
		}
		res, err := stats.MannWhitney(same, cross)
		if err != nil {
			return ShiftAnalysis{}, fmt.Errorf("shift for %s: %w", ds.Devices[di].ID, err)
		}
		out.GalleryIDs = append(out.GalleryIDs, ds.Devices[di].ID)
		out.P = append(out.P, res.P)
		out.Effect = append(out.Effect, res.CommonLanguage)
	}
	return out, nil
}

// RenderShift prints the analysis.
func RenderShift(a ShiftAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distribution shift: DMG vs DDMG per gallery device (Mann-Whitney)\n")
	fmt.Fprintf(&b, "%-8s %14s %22s\n", "Gallery", "p-value", "P(same > diverse)")
	for i, id := range a.GalleryIDs {
		fmt.Fprintf(&b, "%-8s %14s %22.3f\n", id, a.P[i].String(), a.Effect[i])
	}
	return b.String()
}

package study

import (
	"fmt"
	"strings"

	"fpinterop/internal/stats"
)

// ShiftAnalysis tests, per gallery device, whether the cross-device
// genuine score distribution is significantly shifted below the
// same-device one — a direct hypothesis test of the paper's headline
// claim, complementing the Kendall correlation view of Table 4.
type ShiftAnalysis struct {
	// GalleryIDs lists the live-scan gallery devices analysed.
	GalleryIDs []string
	// P[i] is the two-sided Mann–Whitney p-value comparing DMG (same
	// device) against DDMG (diverse devices) for gallery device i.
	P []stats.PValue
	// Effect[i] is the common-language effect size: the probability a
	// same-device genuine score exceeds a cross-device one.
	Effect []float64
}

// Shift runs the analysis. The per-gallery partitions are built in one
// pass over the score sets (instead of one rescan per device) and the
// independent Mann–Whitney tests run on the study's bounded worker pool.
func Shift(ds *Dataset, sets *ScoreSets) (ShiftAnalysis, error) {
	nDev := ds.NumDevices()
	same := make([][]float64, nDev)
	cross := make([][]float64, nDev)
	for _, s := range sets.DMG {
		same[s.DeviceG] = append(same[s.DeviceG], s.Value)
	}
	for _, s := range sets.DDMG {
		cross[s.DeviceG] = append(cross[s.DeviceG], s.Value)
	}
	var galleries []int
	for di := 0; di < nDev; di++ {
		if !ds.Devices[di].Ink {
			galleries = append(galleries, di)
		}
	}
	out := ShiftAnalysis{
		GalleryIDs: make([]string, len(galleries)),
		P:          make([]stats.PValue, len(galleries)),
		Effect:     make([]float64, len(galleries)),
	}
	err := forEachIndex(len(galleries), ds.Config.Parallelism, func(i int) error {
		di := galleries[i]
		res, err := stats.MannWhitney(same[di], cross[di])
		if err != nil {
			return fmt.Errorf("shift for %s: %w", ds.Devices[di].ID, err)
		}
		out.GalleryIDs[i] = ds.Devices[di].ID
		out.P[i] = res.P
		out.Effect[i] = res.CommonLanguage
		return nil
	})
	if err != nil {
		return ShiftAnalysis{}, err
	}
	return out, nil
}

// RenderShift prints the analysis.
func RenderShift(a ShiftAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distribution shift: DMG vs DDMG per gallery device (Mann-Whitney)\n")
	fmt.Fprintf(&b, "%-8s %14s %22s\n", "Gallery", "p-value", "P(same > diverse)")
	for i, id := range a.GalleryIDs {
		fmt.Fprintf(&b, "%-8s %14s %22.3f\n", id, a.P[i].String(), a.Effect[i])
	}
	return b.String()
}

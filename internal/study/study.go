// Package study orchestrates the paper's experiment: it assembles the
// synthetic data collection (494 participants × 4 live-scan devices × 2
// samples + ink ten-print cards), generates the four similarity score sets
// of Table 2/3 (DMG, DMI, DDMG, DDMI), and computes every table and figure
// of the evaluation — score distributions (Figures 2–4), the Kendall rank
// correlation matrix (Table 4), the interoperability FNMR matrices
// (Tables 5–6), and the quality-conditioned low-score surfaces (Figure 5).
package study

import (
	"fmt"
	"runtime"
	"sync"

	"fpinterop/internal/match"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// Config parameterizes a study run. The zero value reproduces the paper's
// scale (494 subjects, full impostor subsets); tests shrink it.
type Config struct {
	// Seed makes the whole study a pure function of one number.
	Seed uint64
	// Subjects is the cohort size (default 494).
	Subjects int
	// MaxDMI caps same-device impostor comparisons (default 120,855 —
	// the paper's Table 3 count).
	MaxDMI int
	// MaxDDMI caps cross-device impostor comparisons (default 483,420).
	MaxDDMI int
	// Matcher is the similarity engine (default a zero HoughMatcher, the
	// BioEngine stand-in).
	Matcher match.Matcher
	// Parallelism bounds worker goroutines (default GOMAXPROCS).
	Parallelism int
	// MeanMinutiae forwards to master-print generation (default 62).
	MeanMinutiae float64
}

func (c Config) withDefaults() Config {
	if c.Subjects == 0 {
		c.Subjects = 494
	}
	if c.MaxDMI == 0 {
		c.MaxDMI = 120855
	}
	if c.MaxDDMI == 0 {
		c.MaxDDMI = 483420
	}
	if c.Matcher == nil {
		c.Matcher = &match.HoughMatcher{}
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Dataset is the full synthetic data collection: every impression of every
// subject on every device.
type Dataset struct {
	Config  Config
	Cohort  *population.Cohort
	Devices []*sensor.Profile
	// impressions[subject][device] holds the samples captured for that
	// subject on that device (2 for every device; D4's second sample is a
	// re-scan of the same physical card).
	impressions [][][]*sensor.Impression
}

// SamplesPerDevice is how many impressions each subject contributes per
// device: two live-scan placements, or one ink imprint plus one re-scan.
const SamplesPerDevice = 2

// BuildDataset runs the simulated data collection. Captures are
// deterministic (keyed by subject/device/sample) and parallelized across
// subjects.
func BuildDataset(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	cohort := population.NewCohort(root.Child("cohort"), population.CohortOptions{
		Size:         cfg.Subjects,
		MeanMinutiae: cfg.MeanMinutiae,
	})
	devices := sensor.Profiles()
	ds := &Dataset{
		Config:      cfg,
		Cohort:      cohort,
		Devices:     devices,
		impressions: make([][][]*sensor.Impression, len(cohort.Subjects)),
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	sem := make(chan struct{}, cfg.Parallelism)
	for si, subj := range cohort.Subjects {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			perDevice := make([][]*sensor.Impression, len(devices))
			for di, dev := range devices {
				samples := make([]*sensor.Impression, 0, SamplesPerDevice)
				first, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
				if err != nil {
					setErr(&mu, &firstEr, err)
					return
				}
				samples = append(samples, first)
				if dev.Ink {
					re, err := dev.Rescan(first, subj.CaptureSource(dev.ID, 1))
					if err != nil {
						setErr(&mu, &firstEr, err)
						return
					}
					samples = append(samples, re)
				} else {
					second, err := dev.CaptureSubject(subj, 1, sensor.CaptureOptions{})
					if err != nil {
						setErr(&mu, &firstEr, err)
						return
					}
					samples = append(samples, second)
				}
				perDevice[di] = samples
			}
			mu.Lock()
			ds.impressions[si] = perDevice
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, fmt.Errorf("study: dataset build: %w", firstEr)
	}
	return ds, nil
}

func setErr(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	defer mu.Unlock()
	if *dst == nil {
		*dst = err
	}
}

// Impression returns the sample-th impression of a subject on a device
// index (0–4).
func (ds *Dataset) Impression(subject, device, sample int) *sensor.Impression {
	return ds.impressions[subject][device][sample]
}

// NumSubjects returns the cohort size.
func (ds *Dataset) NumSubjects() int { return len(ds.impressions) }

// NumDevices returns the device count (5).
func (ds *Dataset) NumDevices() int { return len(ds.Devices) }

// DeviceIndex maps a device ID ("D0".."D4") to its index.
func (ds *Dataset) DeviceIndex(id string) (int, bool) {
	for i, d := range ds.Devices {
		if d.ID == id {
			return i, true
		}
	}
	return 0, false
}

package study

import (
	"math"
	"sync"
	"testing"

	"strings"

	"fpinterop/internal/gallery"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/stats"
)

// The shared test study: built once, used by every analysis test. Small
// enough for CI (single-core) but large enough for the paper's qualitative
// shapes to be visible.
var (
	tsOnce sync.Once
	tsDS   *Dataset
	tsSets *ScoreSets
	tsErr  error
)

func testStudy(t *testing.T) (*Dataset, *ScoreSets) {
	t.Helper()
	tsOnce.Do(func() {
		cfg := Config{
			Seed:     2013,
			Subjects: 60,
			MaxDMI:   4000,
			MaxDDMI:  6000,
		}
		tsDS, tsErr = BuildDataset(cfg)
		if tsErr != nil {
			return
		}
		tsSets, tsErr = GenerateScores(tsDS)
	})
	if tsErr != nil {
		t.Fatal(tsErr)
	}
	return tsDS, tsSets
}

func TestBuildDatasetShape(t *testing.T) {
	ds, _ := testStudy(t)
	if ds.NumSubjects() != 60 {
		t.Fatalf("subjects = %d", ds.NumSubjects())
	}
	if ds.NumDevices() != 5 {
		t.Fatalf("devices = %d", ds.NumDevices())
	}
	for s := 0; s < ds.NumSubjects(); s++ {
		for d := 0; d < ds.NumDevices(); d++ {
			for k := 0; k < SamplesPerDevice; k++ {
				imp := ds.Impression(s, d, k)
				if imp == nil || imp.Template == nil {
					t.Fatalf("missing impression (%d,%d,%d)", s, d, k)
				}
				if imp.SubjectID != s {
					t.Fatalf("impression subject %d, want %d", imp.SubjectID, s)
				}
			}
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Subjects: 4, MaxDMI: 10, MaxDDMI: 10}
	a, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 5; d++ {
			ta := a.Impression(s, d, 0).Template
			tb := b.Impression(s, d, 0).Template
			if ta.Count() != tb.Count() {
				t.Fatalf("impression (%d,%d) differs across builds", s, d)
			}
		}
	}
}

func TestDeviceIndex(t *testing.T) {
	ds, _ := testStudy(t)
	if i, ok := ds.DeviceIndex("D3"); !ok || ds.Devices[i].ID != "D3" {
		t.Fatal("DeviceIndex broken")
	}
	if _, ok := ds.DeviceIndex("DX"); ok {
		t.Fatal("unknown device resolved")
	}
}

func TestTable3CountsFollowDesign(t *testing.T) {
	ds, sets := testStudy(t)
	n := ds.NumSubjects()
	counts := Table3(sets)
	// DMG: one per subject per live-scan device (paper: 494×4 = 1,976).
	if counts.DMG != n*4 {
		t.Fatalf("DMG = %d, want %d", counts.DMG, n*4)
	}
	// DDMG: ordered device pairs, 5×4 = 20 per subject (paper: 9,880).
	if counts.DDMG != n*20 {
		t.Fatalf("DDMG = %d, want %d", counts.DDMG, n*20)
	}
	if counts.DMI != 4000 || counts.DDMI != 6000 {
		t.Fatalf("impostor counts %d/%d, want caps honored", counts.DMI, counts.DDMI)
	}
}

func TestPaperScaleCountArithmetic(t *testing.T) {
	// The full-scale design reproduces Table 3 exactly: 494 subjects.
	const subjects = 494
	if subjects*4 != 1976 {
		t.Fatal("DMG arithmetic broken")
	}
	if subjects*20 != 9880 {
		t.Fatal("DDMG arithmetic broken")
	}
}

func TestGenuineScoresExceedImpostor(t *testing.T) {
	_, sets := testStudy(t)
	gm := stats.Mean(Values(sets.DMG))
	im := stats.Mean(Values(sets.DMI))
	if gm < im+5 {
		t.Fatalf("genuine mean %v not well above impostor mean %v", gm, im)
	}
}

func TestSameDeviceGenuineBeatsCrossDevice(t *testing.T) {
	// The paper's headline finding: genuine scores are higher when both
	// samples come from the same device.
	_, sets := testStudy(t)
	dmg := stats.Mean(Values(sets.DMG))
	ddmg := stats.Mean(Values(sets.DDMG))
	if dmg <= ddmg {
		t.Fatalf("DMG mean %v not above DDMG mean %v", dmg, ddmg)
	}
}

func TestImpostorsInsensitiveToDeviceDiversity(t *testing.T) {
	// The paper: FMR is NOT affected by device diversity. Means of DMI
	// and DDMI should be close (both near zero).
	_, sets := testStudy(t)
	dmi := stats.Mean(Values(sets.DMI))
	ddmi := stats.Mean(Values(sets.DDMI))
	if math.Abs(dmi-ddmi) > 0.5 {
		t.Fatalf("impostor means diverge: DMI %v vs DDMI %v", dmi, ddmi)
	}
	// And both stay below the empirical bound of 7.
	for _, s := range append(append([]Score{}, sets.DMI...), sets.DDMI...) {
		if s.Value >= 7 {
			t.Fatalf("impostor score %v >= 7", s.Value)
		}
	}
}

func TestInkProbeScoresLowest(t *testing.T) {
	// Matching scores of any live-scan probe are higher than ten-print
	// probes (paper, Figure 4 discussion).
	ds, sets := testStudy(t)
	d4, _ := ds.DeviceIndex("D4")
	var live, ink []float64
	for _, s := range sets.DDMG {
		if ds.Devices[s.DeviceG].Ink {
			continue
		}
		if s.DeviceP == d4 {
			ink = append(ink, s.Value)
		} else {
			live = append(live, s.Value)
		}
	}
	if stats.Mean(ink) >= stats.Mean(live) {
		t.Fatalf("ink probe mean %v not below live probe mean %v",
			stats.Mean(ink), stats.Mean(live))
	}
}

func TestFigure1Demographics(t *testing.T) {
	ds, _ := testStudy(t)
	f := Figure1(ds)
	if f.Total != 60 {
		t.Fatalf("total = %d", f.Total)
	}
	sum := 0
	for _, n := range f.Ages {
		sum += n
	}
	if sum != f.Total {
		t.Fatal("age histogram incomplete")
	}
}

func TestFigure2OrderedSeries(t *testing.T) {
	ds, sets := testStudy(t)
	f, err := Figure2(ds, sets, "D3")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.SeriesByProbe) != 5 {
		t.Fatalf("series count = %d, want 5", len(f.SeriesByProbe))
	}
	for id, series := range f.SeriesByProbe {
		for i := 1; i < len(series); i++ {
			if series[i] > series[i-1] {
				t.Fatalf("series %s not descending", id)
			}
		}
	}
	// Same-device series dominates the others on average.
	same := stats.Mean(f.SeriesByProbe["D3"])
	for id, series := range f.SeriesByProbe {
		if id == "D3" {
			continue
		}
		if stats.Mean(series) >= same {
			t.Fatalf("probe %s mean %v >= same-device %v", id, stats.Mean(series), same)
		}
	}
	if _, err := Figure2(ds, sets, "DX"); err == nil {
		t.Fatal("expected unknown-device error")
	}
}

func TestFigure3Histograms(t *testing.T) {
	ds, sets := testStudy(t)
	f, err := Figure3(ds, sets, "D0")
	if err != nil {
		t.Fatal(err)
	}
	// Impostor mass concentrates in the lowest bins (paper: 0-1 bin holds
	// the vast majority).
	impTotal := f.Impostor.Total() + f.Impostor.Over + f.Impostor.Under
	if impTotal == 0 {
		t.Skip("no same-device impostor scores for D0 in the subset")
	}
	low := f.Impostor.Counts[0] + f.Impostor.Counts[1] + f.Impostor.Counts[2]
	if float64(low) < 0.9*float64(impTotal) {
		t.Fatalf("impostor mass not concentrated low: %d of %d in 0-3", low, impTotal)
	}
	// Genuine mass sits above the impostor mass.
	genHi := 0
	for i := 7; i < len(f.Genuine.Counts); i++ {
		genHi += f.Genuine.Counts[i]
	}
	if genHi == 0 {
		t.Fatal("no genuine scores above 7")
	}
	if _, err := Figure3(ds, sets, "DX"); err == nil {
		t.Fatal("expected unknown-device error")
	}
}

func TestFigure4CrossDeviceOverlapGreater(t *testing.T) {
	// Paper: the overlap of genuine and impostor distributions grows with
	// diverse sensors — the number of genuine scores below 7 is higher in
	// diverse vs non-diverse sensor choices (pooled over device pairs;
	// individual pairs fluctuate, as the paper's own D1/D3 anomalies show).
	_, sets := testStudy(t)
	lowFrac := func(scores []Score) float64 {
		low := 0
		for _, s := range scores {
			if s.Value < 7 {
				low++
			}
		}
		if len(scores) == 0 {
			return 0
		}
		return float64(low) / float64(len(scores))
	}
	if lowFrac(sets.DDMG) <= lowFrac(sets.DMG) {
		t.Fatalf("cross-device low-genuine fraction %v not above same-device %v",
			lowFrac(sets.DDMG), lowFrac(sets.DMG))
	}
}

func TestFigure4APIErrors(t *testing.T) {
	ds, sets := testStudy(t)
	if _, err := Figure4(ds, sets, "D0", "D0"); err == nil {
		t.Fatal("expected distinct-device error")
	}
	if _, err := Figure4(ds, sets, "DX", "D0"); err == nil {
		t.Fatal("expected unknown-device error")
	}
}

func TestTable4KendallMatrix(t *testing.T) {
	ds, sets := testStudy(t)
	tbl, err := Table4(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.RowIDs) != 4 || len(tbl.ColIDs) != 5 {
		t.Fatalf("matrix shape %dx%d", len(tbl.RowIDs), len(tbl.ColIDs))
	}
	for i := range tbl.RowIDs {
		// Diagonal: a list correlated with itself → tau 1, p microscopic.
		if tbl.Tau[i][i] != 1 {
			t.Fatalf("diagonal tau[%d] = %v", i, tbl.Tau[i][i])
		}
		if tbl.P[i][i].Log10 > -20 {
			t.Fatalf("diagonal p[%d] = %v not extreme", i, tbl.P[i][i])
		}
		// Off-diagonal cells are strictly less significant than diagonal.
		for j := range tbl.ColIDs {
			if j == i {
				continue
			}
			if tbl.P[i][j].Log10 < tbl.P[i][i].Log10 {
				t.Fatalf("off-diagonal (%d,%d) more significant than diagonal", i, j)
			}
		}
	}
}

func TestTable5FNMRMatrixShape(t *testing.T) {
	ds, sets := testStudy(t)
	m, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.DeviceIDs) != 5 {
		t.Fatalf("matrix size %d", len(m.DeviceIDs))
	}
	// Average live-scan diagonal FNMR below average off-diagonal FNMR
	// (the paper's central Table 5 observation).
	var diag, off []float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				diag = append(diag, m.FNMR[i][j])
			} else {
				off = append(off, m.FNMR[i][j])
			}
		}
	}
	if stats.Mean(diag) > stats.Mean(off) {
		t.Fatalf("diagonal FNMR %v above off-diagonal %v", stats.Mean(diag), stats.Mean(off))
	}
	// D4 column (ink probes) is the worst among off-diagonal columns.
	d4, _ := ds.DeviceIndex("D4")
	var inkCol, liveOff []float64
	for i := 0; i < 4; i++ {
		inkCol = append(inkCol, m.FNMR[i][d4])
		for j := 0; j < 4; j++ {
			if i != j {
				liveOff = append(liveOff, m.FNMR[i][j])
			}
		}
	}
	if stats.Mean(inkCol) < stats.Mean(liveOff) {
		t.Fatalf("ink column FNMR %v not the worst (live off-diag %v)",
			stats.Mean(inkCol), stats.Mean(liveOff))
	}
	// D4-D4 (rescan of the same card) is anomalously low, as in Table 5.
	if m.FNMR[d4][d4] > stats.Mean(liveOff) {
		t.Fatalf("D4-D4 FNMR %v should be anomalously low", m.FNMR[d4][d4])
	}
}

func TestTable6QualityFilteredMatrix(t *testing.T) {
	ds, sets := testStudy(t)
	full, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	good, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.01, MaxQuality: nfiq.Good})
	if err != nil {
		t.Fatal(err)
	}
	// Restricting to good-quality impressions must reduce usable pairs and
	// must not increase the overall genuine rejection mass.
	var fullSum, goodSum float64
	var fullN, goodN int
	for i := range full.FNMR {
		for j := range full.FNMR[i] {
			fullSum += full.FNMR[i][j] * float64(full.GenuineCount[i][j])
			fullN += full.GenuineCount[i][j]
			goodSum += good.FNMR[i][j] * float64(good.GenuineCount[i][j])
			goodN += good.GenuineCount[i][j]
		}
	}
	if goodN >= fullN {
		t.Fatalf("quality filter kept %d of %d pairs", goodN, fullN)
	}
	if goodN > 0 && fullN > 0 && goodSum/float64(goodN) > fullSum/float64(fullN) {
		t.Fatalf("quality-filtered FNMR %v above unfiltered %v",
			goodSum/float64(goodN), fullSum/float64(fullN))
	}
}

func TestFNMRMatrixErrors(t *testing.T) {
	ds, sets := testStudy(t)
	if _, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{}); err == nil {
		t.Fatal("expected target-FMR error")
	}
}

func TestFigure5QualitySurface(t *testing.T) {
	_, sets := testStudy(t)
	f := Figure5(sets)
	if f.Threshold != 10 {
		t.Fatal("threshold should be 10 (paper)")
	}
	var sameTotal, crossTotal int
	for qg := 0; qg < 5; qg++ {
		for qp := 0; qp < 5; qp++ {
			sameTotal += f.SameDevice[qg][qp]
			crossTotal += f.CrossDevice[qg][qp]
		}
	}
	// Cross-device low scores are far more frequent overall — the paper's
	// Figure 5(b) has much taller bars than 5(a).
	if crossTotal <= sameTotal {
		t.Fatalf("cross-device low scores %d not above same-device %d", crossTotal, sameTotal)
	}
	// Good-quality pairs (1,1) should contribute few low scores in the
	// same-device surface compared with poor pairs.
	if f.SameDevice[0][0] > f.SameDevice[4][4]+f.SameDevice[3][3]+f.SameDevice[4][3]+f.SameDevice[3][4] && sameTotal > 10 {
		t.Fatalf("clean pairs produce more low scores (%d) than poor pairs", f.SameDevice[0][0])
	}
}

func TestMeanGenuineByPairDiagonalDominance(t *testing.T) {
	ds, sets := testStudy(t)
	m := MeanGenuineByPair(ds, sets)
	// Live-scan diagonal cells beat their row's off-diagonal cells.
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			if m[i][i] <= m[i][j] {
				t.Fatalf("pair (%d,%d): diagonal %v not above %v", i, j, m[i][i], m[i][j])
			}
		}
	}
}

func TestFilterAndValues(t *testing.T) {
	scores := []Score{
		{SubjectG: 1, SubjectP: 1, DeviceG: 0, DeviceP: 0, Value: 10},
		{SubjectG: 1, SubjectP: 2, DeviceG: 0, DeviceP: 1, Value: 2},
	}
	if !scores[0].Genuine() || scores[1].Genuine() {
		t.Fatal("Genuine() wrong")
	}
	if !scores[0].SameDevice() || scores[1].SameDevice() {
		t.Fatal("SameDevice() wrong")
	}
	vs := Values(scores)
	if len(vs) != 2 || vs[0] != 10 {
		t.Fatal("Values wrong")
	}
	gen := FilterScores(scores, func(s Score) bool { return s.Genuine() })
	if len(gen) != 1 {
		t.Fatal("FilterScores wrong")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	ds, sets := testStudy(t)
	if out := RenderTable1(ds); len(out) < 100 {
		t.Fatal("Table 1 rendering too short")
	}
	if out := RenderFigure1(Figure1(ds)); len(out) < 100 {
		t.Fatal("Figure 1 rendering too short")
	}
	if out := RenderTable3(Table3(sets)); len(out) < 50 {
		t.Fatal("Table 3 rendering too short")
	}
	f2, _ := Figure2(ds, sets, "D3")
	if out := RenderFigure2(f2); len(out) < 100 {
		t.Fatal("Figure 2 rendering too short")
	}
	f3, _ := Figure3(ds, sets, "D0")
	if out := RenderFigureHist("Figure 3", f3); len(out) < 50 {
		t.Fatal("Figure 3 rendering too short")
	}
	t4, err := Table4(ds, sets)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable4(t4); len(out) < 100 {
		t.Fatal("Table 4 rendering too short")
	}
	m5, err := FNMRMatrix(ds, sets, FNMRMatrixOptions{TargetFMR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFNMRMatrix("Table 5", m5); len(out) < 100 {
		t.Fatal("Table 5 rendering too short")
	}
	if out := RenderFigure5(Figure5(sets)); len(out) < 100 {
		t.Fatal("Figure 5 rendering too short")
	}
}

func TestIndexedIdentificationTracksExhaustive(t *testing.T) {
	ds, _ := testStudy(t)
	r, err := IndexedIdentification(ds, "D0", "D0", 40, 3, gallery.IndexOptions{MinCandidates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Gallery != 40 || r.Probes != 40 {
		t.Fatalf("shape: %+v", r)
	}
	for k := 1; k < len(r.Indexed); k++ {
		if r.Indexed[k] < r.Indexed[k-1] {
			t.Fatal("indexed CMC not monotone")
		}
	}
	// The shortlist can only lose probes relative to the full scan, and
	// on a same-device population it should lose almost none.
	if r.Indexed.RankOne() > r.Exhaustive.RankOne() {
		t.Fatalf("indexed rank-1 %.3f exceeds exhaustive %.3f",
			r.Indexed.RankOne(), r.Exhaustive.RankOne())
	}
	if d := r.Exhaustive.RankOne() - r.Indexed.RankOne(); d > 0.05 {
		t.Fatalf("indexed rank-1 trails exhaustive by %.3f", d)
	}
	if r.MeanShortlist == 0 {
		t.Fatal("no shortlist statistics collected")
	}
	out := RenderIndexedIdentification([]IndexedIdentificationResult{r})
	if !strings.Contains(out, "D0->D0") || !strings.Contains(out, "idx rank-1") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}

func TestIndexExperimentRegistered(t *testing.T) {
	if _, ok := ExperimentByID("index"); !ok {
		t.Fatal("index experiment not in the registry")
	}
}

func TestIdentificationUnknownDevices(t *testing.T) {
	ds, _ := testStudy(t)
	if _, err := Identification(ds, "D9", "D0", 5, 3); err == nil {
		t.Fatal("unknown gallery device accepted")
	}
	if _, err := IndexedIdentification(ds, "D0", "D9", 5, 3, gallery.IndexOptions{}); err == nil {
		t.Fatal("unknown probe device accepted")
	}
}

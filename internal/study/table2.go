package study

import (
	"fmt"
	"strings"
)

// Table2Row describes one of the four similarity score sets (the paper's
// Table 2, "Notation table for similarity score computations").
type Table2Row struct {
	// Name is the set label (DMG, DMI, DDMG, DDMI).
	Name string
	// Definition is the membership rule.
	Definition string
	// Subjects, Devices, Samples mirror the paper's Table 3 columns.
	Subjects, Devices, Samples int
}

// Table2 returns the notation table. Counts follow the study design: DMG
// uses the four live-scan devices (ink has one imprint), everything else
// spans all five.
func Table2(ds *Dataset) []Table2Row {
	n := ds.NumSubjects()
	return []Table2Row{
		{
			Name:       "DMG",
			Definition: "Device Match Genuine: same subject, gallery and probe from the same device",
			Subjects:   n, Devices: 4, Samples: 2,
		},
		{
			Name:       "DMI",
			Definition: "Device Match Impostor: different subjects, gallery and probe from the same device",
			Subjects:   n, Devices: 5, Samples: 2,
		},
		{
			Name:       "DDMG",
			Definition: "Diverse Device Match Genuine: same subject, gallery and probe from different devices",
			Subjects:   n, Devices: 5, Samples: 2,
		},
		{
			Name:       "DDMI",
			Definition: "Diverse Device Match Impostor: different subjects, gallery and probe from different devices",
			Subjects:   n, Devices: 5, Samples: 2,
		},
	}
}

// RenderTable2 prints the notation table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Notation for similarity score computations\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %s\n", r.Name, r.Definition)
		fmt.Fprintf(&b, "       (%d subjects, %d devices, %d samples)\n",
			r.Subjects, r.Devices, r.Samples)
	}
	return b.String()
}

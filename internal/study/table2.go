package study

import (
	"fmt"
	"strings"

	"fpinterop/internal/stats"
)

// Table2Row describes one of the four similarity score sets (the paper's
// Table 2, "Notation table for similarity score computations"), together
// with the cardinality and median actually observed in this run.
type Table2Row struct {
	// Name is the set label (DMG, DMI, DDMG, DDMI).
	Name string
	// Definition is the membership rule.
	Definition string
	// Subjects, Devices, Samples mirror the paper's Table 3 columns.
	Subjects, Devices, Samples int
	// Observed is how many scores the set holds in this run.
	Observed int
	// Median is the median similarity score of the set (0 when empty).
	Median float64
}

// Table2 returns the notation table annotated with the observed score
// sets. Counts follow the study design: DMG uses the four live-scan
// devices (ink has one imprint), everything else spans all five.
func Table2(ds *Dataset, sets *ScoreSets) []Table2Row {
	n := ds.NumSubjects()
	median := func(scores []Score) float64 {
		if len(scores) == 0 {
			return 0
		}
		m, _ := stats.Quantile(Values(scores), 0.5)
		return m
	}
	return []Table2Row{
		{
			Name:       "DMG",
			Definition: "Device Match Genuine: same subject, gallery and probe from the same device",
			Subjects:   n, Devices: 4, Samples: 2,
			Observed: len(sets.DMG), Median: median(sets.DMG),
		},
		{
			Name:       "DMI",
			Definition: "Device Match Impostor: different subjects, gallery and probe from the same device",
			Subjects:   n, Devices: 5, Samples: 2,
			Observed: len(sets.DMI), Median: median(sets.DMI),
		},
		{
			Name:       "DDMG",
			Definition: "Diverse Device Match Genuine: same subject, gallery and probe from different devices",
			Subjects:   n, Devices: 5, Samples: 2,
			Observed: len(sets.DDMG), Median: median(sets.DDMG),
		},
		{
			Name:       "DDMI",
			Definition: "Diverse Device Match Impostor: different subjects, gallery and probe from different devices",
			Subjects:   n, Devices: 5, Samples: 2,
			Observed: len(sets.DDMI), Median: median(sets.DDMI),
		},
	}
}

// RenderTable2 prints the notation table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Notation for similarity score computations\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %s\n", r.Name, r.Definition)
		fmt.Fprintf(&b, "       (%d subjects, %d devices, %d samples; observed %d scores, median %.2f)\n",
			r.Subjects, r.Devices, r.Samples, r.Observed, r.Median)
	}
	return b.String()
}

package wal

import (
	"fmt"
	"testing"

	"fpinterop/internal/gallery"
)

// The enroll benchmarks measure what durability costs: the same
// enrollment stream into a plain in-memory gallery, a WAL with the OS
// page cache absorbing writes, and a WAL fsyncing every acknowledgement.
func benchEnroll(b *testing.B, enroll func(i int, e gallery.Export) error) {
	fx := fixtures(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := fx[i%len(fx)]
		e.ID = fmt.Sprintf("bench-%08d", i)
		if err := enroll(i, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnrollNoWAL(b *testing.B) {
	s := gallery.New(nil)
	benchEnroll(b, func(_ int, e gallery.Export) error {
		return s.Enroll(e.ID, e.DeviceID, e.Template)
	})
}

func BenchmarkEnrollWALSyncNone(b *testing.B) {
	s := openStore(b, b.TempDir(), Options{Sync: SyncNone})
	defer s.Close()
	benchEnroll(b, func(_ int, e gallery.Export) error {
		return s.Enroll(e.ID, e.DeviceID, e.Template)
	})
}

func BenchmarkEnrollWALSyncAlways(b *testing.B) {
	s := openStore(b, b.TempDir(), Options{Sync: SyncAlways})
	defer s.Close()
	benchEnroll(b, func(_ int, e gallery.Export) error {
		return s.Enroll(e.ID, e.DeviceID, e.Template)
	})
}

func BenchmarkEnrollBatch64WALSyncAlways(b *testing.B) {
	s := openStore(b, b.TempDir(), Options{Sync: SyncAlways})
	defer s.Close()
	fx := fixtures(b, 32)
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([]gallery.Export, batch)
		for j := range items {
			e := fx[(i*batch+j)%len(fx)]
			e.ID = fmt.Sprintf("bench-%08d-%02d", i, j)
			items[j] = e
		}
		if err := s.EnrollBatch(items); err != nil {
			b.Fatal(err)
		}
	}
}

// Package wal makes a gallery durable with a per-shard write-ahead
// log. Every enrollment and removal is appended to a checksummed,
// length-prefixed log before the caller is acknowledged; on startup the
// log is replayed on top of the last compaction snapshot, so a crash —
// including kill -9 mid-write — loses at most the single operation that
// was never acknowledged. Periodic compaction folds the log into a
// snapshot (the existing gallery stream format plus a log sequence
// number) and resets the log, bounding both replay time and disk use.
//
// Log file layout:
//
//	0  4  magic "FPWL"
//	4  2  version (1)
//	then per record:
//	    4  body length
//	    4  CRC32 (IEEE) of body
//	    body:
//	        8  LSN (monotonic, starts at 1)
//	        1  op (1 = enroll, 2 = remove)
//	        2  id length, id bytes
//	        enroll only:
//	            2  device-id length, device-id bytes
//	            4  template length, template bytes (minutiae codec)
//
// Replay verifies each record's length and checksum. The first record
// that fails — a torn tail from a crash mid-append, or corruption —
// ends replay, and the file is truncated back to the last good record
// so the next append continues from a clean boundary. Nothing after a
// bad record can be trusted: a missing middle record would silently
// reorder history, so the log never tries to resynchronise past one.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"fpinterop/internal/obs"
)

var logMagic = [4]byte{'F', 'P', 'W', 'L'}

const (
	logVersion = 1
	headerSize = 6

	// OpEnroll and OpRemove are the two mutations a gallery supports.
	OpEnroll byte = 1
	OpRemove byte = 2

	// maxBody caps a record body: a template is capped at 1 MiB by the
	// gallery codec, so anything larger is corruption, not data.
	maxBody = 2 << 20
)

// ErrBadLogFormat reports a file that is not a write-ahead log.
var ErrBadLogFormat = errors.New("wal: bad log format")

// Record is one logged mutation. Template holds the minutiae-codec
// bytes and is only set for OpEnroll.
type Record struct {
	LSN      uint64
	Op       byte
	ID       string
	DeviceID string
	Template []byte
}

// ReplayInfo summarises what opening a log found.
type ReplayInfo struct {
	// Records is the number of intact records replayed.
	Records int
	// LastLSN is the highest LSN seen (0 if the log was empty).
	LastLSN uint64
	// TruncatedBytes is how many trailing bytes were cut off because
	// they failed length or checksum validation.
	TruncatedBytes int64
	// TornTail is true when the log ended in a partial or corrupt
	// record — the signature of a crash mid-append.
	TornTail bool
}

// Log is an append-only record log. It is not safe for concurrent use;
// Store serialises access.
type Log struct {
	f   *os.File
	buf []byte
	// size mirrors the file size so callers can gauge log growth
	// without a stat syscall per append.
	size int64
	// fsyncLat, when non-nil, observes each fsync's duration (set by
	// Store from its metrics).
	fsyncLat *obs.Histogram
}

// OpenLog opens (or creates) the log at path and replays every intact
// record through apply in order. A torn or corrupt tail is truncated
// away so appends resume from the last good record. If apply returns an
// error, replay stops and the log is closed.
func OpenLog(path string, apply func(Record) error) (*Log, ReplayInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayInfo{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f}
	info, err := l.replay(apply)
	if err != nil {
		f.Close()
		return nil, ReplayInfo{}, err
	}
	if pos, err := l.f.Seek(0, io.SeekEnd); err == nil {
		l.size = pos
	}
	return l, info, nil
}

func (l *Log) replay(apply func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	size, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return info, fmt.Errorf("wal: seek: %w", err)
	}
	if size < headerSize {
		// New log, or a crash before even the header landed: start
		// fresh. There can be no records to lose in under 6 bytes.
		if size > 0 {
			info.TornTail = true
			info.TruncatedBytes = size
		}
		if err := l.f.Truncate(0); err != nil {
			return info, fmt.Errorf("wal: truncate: %w", err)
		}
		var hdr [headerSize]byte
		copy(hdr[:4], logMagic[:])
		binary.BigEndian.PutUint16(hdr[4:], logVersion)
		if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
			return info, fmt.Errorf("wal: write header: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return info, fmt.Errorf("wal: sync header: %w", err)
		}
		if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
			return info, fmt.Errorf("wal: seek: %w", err)
		}
		return info, nil
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return info, fmt.Errorf("wal: seek: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
		return info, fmt.Errorf("wal: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != logMagic {
		return info, ErrBadLogFormat
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != logVersion {
		return info, fmt.Errorf("wal: unsupported log version %d", v)
	}
	good := int64(headerSize)
	var prefix [8]byte
	for good < size {
		if size-good < 8 {
			break // partial length/crc prefix
		}
		if _, err := io.ReadFull(l.f, prefix[:]); err != nil {
			return info, fmt.Errorf("wal: read record prefix: %w", err)
		}
		bodyLen := int64(binary.BigEndian.Uint32(prefix[:4]))
		sum := binary.BigEndian.Uint32(prefix[4:])
		if bodyLen > maxBody || size-good-8 < bodyLen {
			break // implausible length or partial body
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(l.f, body); err != nil {
			return info, fmt.Errorf("wal: read record body: %w", err)
		}
		if crc32.ChecksumIEEE(body) != sum {
			break // bit rot or torn write
		}
		rec, err := decodeRecord(body)
		if err != nil {
			break // checksummed but malformed: treat as corruption
		}
		if err := apply(rec); err != nil {
			return info, err
		}
		good += 8 + bodyLen
		info.Records++
		info.LastLSN = rec.LSN
	}
	if good < size {
		info.TornTail = true
		info.TruncatedBytes = size - good
		if err := l.f.Truncate(good); err != nil {
			return info, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return info, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return info, fmt.Errorf("wal: seek: %w", err)
	}
	return info, nil
}

func decodeRecord(body []byte) (Record, error) {
	var rec Record
	if len(body) < 11 {
		return rec, fmt.Errorf("wal: record body of %d bytes too short", len(body))
	}
	rec.LSN = binary.BigEndian.Uint64(body)
	rec.Op = body[8]
	rest := body[9:]
	readStr := func() (string, error) {
		if len(rest) < 2 {
			return "", errors.New("wal: truncated string length")
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return "", errors.New("wal: truncated string")
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	id, err := readStr()
	if err != nil {
		return rec, err
	}
	rec.ID = id
	switch rec.Op {
	case OpRemove:
		if len(rest) != 0 {
			return rec, errors.New("wal: trailing bytes in remove record")
		}
	case OpEnroll:
		dev, err := readStr()
		if err != nil {
			return rec, err
		}
		rec.DeviceID = dev
		if len(rest) < 4 {
			return rec, errors.New("wal: truncated template length")
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) != n {
			return rec, errors.New("wal: template length mismatch")
		}
		rec.Template = append([]byte(nil), rest...)
	default:
		return rec, fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	return rec, nil
}

func appendRecord(buf []byte, rec Record) ([]byte, error) {
	if len(rec.ID) > 1<<16-1 || len(rec.DeviceID) > 1<<16-1 {
		return buf, fmt.Errorf("wal: id too long for %q", rec.ID)
	}
	bodyLen := 8 + 1 + 2 + len(rec.ID)
	if rec.Op == OpEnroll {
		bodyLen += 2 + len(rec.DeviceID) + 4 + len(rec.Template)
	}
	if bodyLen > maxBody {
		return buf, fmt.Errorf("wal: record for %q exceeds %d bytes", rec.ID, maxBody)
	}
	start := len(buf)
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], uint32(bodyLen))
	buf = append(buf, u32[:]...)
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	binary.BigEndian.PutUint64(u64[:], rec.LSN)
	buf = append(buf, u64[:]...)
	buf = append(buf, rec.Op)
	binary.BigEndian.PutUint16(u16[:], uint16(len(rec.ID)))
	buf = append(buf, u16[:]...)
	buf = append(buf, rec.ID...)
	if rec.Op == OpEnroll {
		binary.BigEndian.PutUint16(u16[:], uint16(len(rec.DeviceID)))
		buf = append(buf, u16[:]...)
		buf = append(buf, rec.DeviceID...)
		binary.BigEndian.PutUint32(u32[:], uint32(len(rec.Template)))
		buf = append(buf, u32[:]...)
		buf = append(buf, rec.Template...)
	}
	body := buf[start+8:]
	binary.BigEndian.PutUint32(buf[start+4:start+8], crc32.ChecksumIEEE(body))
	return buf, nil
}

// Append writes the records to the log in one write call, then fsyncs
// when sync is true. A multi-record batch therefore pays for a single
// disk flush. The write is all-or-nothing from replay's point of view:
// if it tears partway through, recovery truncates back to the record
// boundary before the batch's first torn record.
func (l *Log) Append(sync bool, recs ...Record) error {
	buf := l.buf[:0]
	var err error
	for _, rec := range recs {
		if buf, err = appendRecord(buf, rec); err != nil {
			return err
		}
	}
	l.buf = buf[:0]
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	if sync {
		var t0 time.Time
		if l.fsyncLat != nil {
			t0 = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		if l.fsyncLat != nil {
			l.fsyncLat.ObserveSince(t0)
		}
	}
	return nil
}

// Reset discards every record, leaving only the header. Called after a
// compaction snapshot has durably captured the log's effects.
func (l *Log) Reset() error {
	if err := l.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.size = headerSize
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync after reset: %w", err)
	}
	return nil
}

// Size returns the log's current size in bytes.
func (l *Log) Size() (int64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: stat: %w", err)
	}
	return st.Size(), nil
}

// Close fsyncs and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

package wal

import "fpinterop/internal/obs"

// walMetrics holds the per-store metric handles, resolved once in
// Open from Options.Metrics. Nil-receiver safe throughout: an
// unmetered store pays one branch per mutation.
type walMetrics struct {
	appendLat  *obs.Histogram // wal_append_latency_ns: whole append incl. fsync
	fsyncLat   *obs.Histogram // wal_fsync_latency_ns
	compacts   *obs.Counter   // wal_compactions_total
	compactLat *obs.Histogram // wal_compaction_latency_ns
	logBytes   *obs.Gauge     // wal_log_bytes
}

// newWALMetrics registers the per-shard WAL families and sets the
// recovery gauges — recovery happens exactly once, in Open, so the
// outcome is exposed as point-in-time values rather than counters.
func newWALMetrics(reg *obs.Registry, shard string, rec RecoveryStats, logSize int64) *walMetrics {
	if reg == nil {
		return nil
	}
	if shard == "" {
		shard = "wal"
	}
	m := &walMetrics{
		appendLat: reg.HistogramVec("wal_append_latency_ns",
			"Write-ahead-log append latency (encode + write + fsync) in nanoseconds.",
			obs.LatencyBuckets(), "shard").With(shard),
		fsyncLat: reg.HistogramVec("wal_fsync_latency_ns",
			"Write-ahead-log fsync latency in nanoseconds.",
			obs.LatencyBuckets(), "shard").With(shard),
		compacts: reg.CounterVec("wal_compactions_total",
			"Log compactions into a snapshot.", "shard").With(shard),
		compactLat: reg.HistogramVec("wal_compaction_latency_ns",
			"Log compaction duration in nanoseconds.",
			obs.LatencyBuckets(), "shard").With(shard),
		logBytes: reg.GaugeVec("wal_log_bytes",
			"Current write-ahead-log size in bytes; compaction resets it.",
			"shard").With(shard),
	}
	m.logBytes.Set(logSize)
	reg.GaugeVec("wal_recovered_snapshot_entries",
		"Enrollments restored from the compaction snapshot at startup.", "shard").
		With(shard).Set(int64(rec.SnapshotEntries))
	reg.GaugeVec("wal_replayed_records",
		"Log records re-applied past the snapshot during crash recovery.", "shard").
		With(shard).Set(int64(rec.Replayed))
	reg.GaugeVec("wal_truncated_bytes",
		"Torn-tail bytes discarded during crash recovery.", "shard").
		With(shard).Set(rec.TruncatedBytes)
	tornTail := int64(0)
	if rec.TornTail {
		tornTail = 1
	}
	reg.GaugeVec("wal_torn_tail",
		"1 when the log ended mid-record at startup (crash mid-append).", "shard").
		With(shard).Set(tornTail)
	return m
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"fpinterop/internal/atomicio"
	"fpinterop/internal/gallery"
)

// Snapshot container format — a gallery stream stamped with the log
// sequence number it covers:
//
//	0  4  magic "FPWS"
//	4  2  version (1)
//	6  8  LSN of the last record folded into this snapshot
//	then the gallery store stream (FPGD, written by Store.SaveTo)
//
// Replay on the next open skips every log record with LSN <= the
// snapshot's: a crash between writing the snapshot and resetting the
// log re-reads those records but applies none of them twice.
var snapMagic = [4]byte{'F', 'P', 'W', 'S'}

const snapVersion = 1

// ErrBadSnapshotFormat reports a file that is not a WAL snapshot.
var ErrBadSnapshotFormat = errors.New("wal: bad snapshot format")

// writeSnapshotStream writes the snapshot container (header + gallery
// stream) to w. It is the shared encoder behind the on-disk compaction
// snapshot and the in-memory capture the replica sync path ships over
// the wire — both sides of a transfer parse the same bytes.
func writeSnapshotStream(w io.Writer, lsn uint64, save func(io.Writer) error) error {
	var hdr [snapHeaderSize]byte
	copy(hdr[:4], snapMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], snapVersion)
	binary.BigEndian.PutUint64(hdr[6:], lsn)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: write snapshot header: %w", err)
	}
	return save(w)
}

const snapHeaderSize = 14

// writeSnapshot atomically replaces path with a snapshot at lsn whose
// gallery stream is produced by save (typically gallery.Store.SaveTo).
func writeSnapshot(path string, lsn uint64, save func(io.Writer) error) error {
	return atomicio.WriteFile(path, 0o644, func(w io.Writer) error {
		return writeSnapshotStream(w, lsn, save)
	})
}

// DecodeSnapshot parses a snapshot stream — the on-disk compaction
// snapshot or the byte-identical capture SyncSnapshot ships to a
// replica — into the LSN it covers and the gallery entries it holds.
func DecodeSnapshot(r io.Reader) (lsn uint64, entries []gallery.Export, err error) {
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wal: read snapshot header: %w", err)
	}
	if [4]byte(hdr[:4]) != snapMagic {
		return 0, nil, ErrBadSnapshotFormat
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != snapVersion {
		return 0, nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	lsn = binary.BigEndian.Uint64(hdr[6:])
	entries, err = gallery.ReadEntries(r)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot gallery: %w", err)
	}
	return lsn, entries, nil
}

// readSnapshot loads the snapshot at path. A missing file is not an
// error — it is simply an empty gallery at LSN 0, the state before the
// first compaction.
func readSnapshot(path string) (lsn uint64, entries []gallery.Export, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil, nil
		}
		return 0, nil, fmt.Errorf("wal: open snapshot %s: %w", path, err)
	}
	defer f.Close()
	return DecodeSnapshot(f)
}

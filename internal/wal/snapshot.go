package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"fpinterop/internal/atomicio"
	"fpinterop/internal/gallery"
)

// Snapshot container format — a gallery stream stamped with the log
// sequence number it covers:
//
//	0  4  magic "FPWS"
//	4  2  version (1)
//	6  8  LSN of the last record folded into this snapshot
//	then the gallery store stream (FPGD, written by Store.SaveTo)
//
// Replay on the next open skips every log record with LSN <= the
// snapshot's: a crash between writing the snapshot and resetting the
// log re-reads those records but applies none of them twice.
var snapMagic = [4]byte{'F', 'P', 'W', 'S'}

const snapVersion = 1

// ErrBadSnapshotFormat reports a file that is not a WAL snapshot.
var ErrBadSnapshotFormat = errors.New("wal: bad snapshot format")

// writeSnapshot atomically replaces path with a snapshot at lsn whose
// gallery stream is produced by save (typically gallery.Store.SaveTo).
func writeSnapshot(path string, lsn uint64, save func(io.Writer) error) error {
	return atomicio.WriteFile(path, 0o644, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		if _, err := bw.Write(snapMagic[:]); err != nil {
			return fmt.Errorf("wal: write snapshot magic: %w", err)
		}
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], snapVersion)
		if _, err := bw.Write(u16[:]); err != nil {
			return fmt.Errorf("wal: write snapshot version: %w", err)
		}
		var u64 [8]byte
		binary.BigEndian.PutUint64(u64[:], lsn)
		if _, err := bw.Write(u64[:]); err != nil {
			return fmt.Errorf("wal: write snapshot lsn: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("wal: flush snapshot header: %w", err)
		}
		return save(w)
	})
}

// readSnapshot loads the snapshot at path. A missing file is not an
// error — it is simply an empty gallery at LSN 0, the state before the
// first compaction.
func readSnapshot(path string) (lsn uint64, entries []gallery.Export, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil, nil
		}
		return 0, nil, fmt.Errorf("wal: open snapshot %s: %w", path, err)
	}
	defer f.Close()
	var hdr [14]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wal: read snapshot header: %w", err)
	}
	if [4]byte(hdr[:4]) != snapMagic {
		return 0, nil, ErrBadSnapshotFormat
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != snapVersion {
		return 0, nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	lsn = binary.BigEndian.Uint64(hdr[6:])
	entries, err = gallery.ReadEntries(f)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot gallery: %w", err)
	}
	return lsn, entries, nil
}

package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/obs"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log before acknowledging every mutation:
	// an acknowledged enrollment survives kill -9 and power loss. This
	// is the default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache. An order of
	// magnitude faster, but a crash can lose the last few acknowledged
	// operations. The log is still fsynced on compaction and Close.
	SyncNone
)

// Options configures a durable store.
type Options struct {
	// Sync is the fsync policy for acknowledged mutations.
	Sync SyncPolicy
	// CompactEvery folds the log into a snapshot after this many
	// logged mutations. 0 disables automatic compaction (Compact can
	// still be called explicitly).
	CompactEvery int
	// Metrics, when non-nil, registers this store's WAL families
	// (append/fsync/compaction latency, log size, recovery gauges)
	// there, labeled by Shard.
	Metrics *obs.Registry
	// Shard is the metric label identifying this store; empty means
	// "wal".
	Shard string
}

// RecoveryStats describes what Open reconstructed.
type RecoveryStats struct {
	// SnapshotLSN is the LSN the compaction snapshot covered (0 when
	// no snapshot existed).
	SnapshotLSN uint64
	// SnapshotEntries is the number of enrollments in the snapshot.
	SnapshotEntries int
	// Replayed is the number of log records applied on top of the
	// snapshot (records at or below SnapshotLSN are skipped).
	Replayed int
	// TruncatedBytes counts trailing log bytes discarded because they
	// failed length or checksum validation; TornTail is set when any
	// were (the signature of a crash mid-append).
	TruncatedBytes int64
	TornTail       bool
}

// ErrDirectLoad is returned by the load methods a durable store
// inherits from the gallery: swapping the in-memory state underneath
// the log would silently diverge memory from disk. Recovery happens in
// Open, nowhere else.
var ErrDirectLoad = errors.New("wal: direct load would bypass the write-ahead log")

const (
	logName  = "wal.log"
	snapName = "snapshot.fpws"
)

// Store is a gallery made durable: every mutation is applied to the
// in-memory gallery and appended to the write-ahead log before the
// caller is acknowledged, and Open rebuilds the gallery from the last
// snapshot plus the log. Reads (Verify, Identify, Scan, ...) are the
// embedded gallery's own and stay lock-free with respect to the WAL.
type Store struct {
	*gallery.Store

	dir string
	opt Options

	// mu serialises mutations so log order matches apply order —
	// without it two racing enrollments could append in the opposite
	// order they were applied, and replay would reconstruct a state
	// nobody ever observed.
	mu           sync.Mutex
	log          *Log
	lsn          uint64
	sinceCompact int
	recovery     RecoveryStats
	compactErr   error
	closed       bool

	// compactLSN is the LSN the newest compaction snapshot covers: the
	// log on disk only holds records above it. A replica asking for a
	// tail below this line gets Truncated and must restart from a
	// snapshot — the records it wants no longer exist.
	compactLSN uint64

	// syncSnapLSN/syncSnapData cache the last snapshot capture served
	// to a replica, so a multi-chunk transfer reads one consistent
	// byte stream without re-serializing the gallery per chunk.
	syncSnapLSN  uint64
	syncSnapData []byte

	// met is non-nil when Options.Metrics was set; record calls are
	// nil-safe.
	met *walMetrics
}

// Open makes store durable under dir, first rebuilding its contents
// from the snapshot and log found there (an empty dir yields an empty
// store). The store must not be mutated through any other path while
// the returned Store owns it.
func Open(dir string, store *gallery.Store, opt Options) (*Store, error) {
	if opt.CompactEvery < 0 {
		return nil, fmt.Errorf("wal: negative CompactEvery %d", opt.CompactEvery)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir %s: %w", dir, err)
	}
	snapLSN, entries, err := readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	snapCount := len(entries)
	// Replay onto the snapshot state. Replay is idempotent: records at
	// or below the snapshot LSN are skipped, an enrollment that
	// already exists overwrites in place, and a removal of a missing
	// id is a no-op — so a crash between writing a snapshot and
	// resetting the log, which leaves both covering the same records,
	// still reconstructs exactly one copy of each enrollment.
	byID := make(map[string]int, len(entries))
	for i, e := range entries {
		byID[e.ID] = i
	}
	applied := 0
	apply := func(rec Record) error {
		if rec.LSN <= snapLSN {
			return nil
		}
		applied++
		switch rec.Op {
		case OpEnroll:
			tpl, err := minutiae.Unmarshal(rec.Template)
			if err != nil {
				return fmt.Errorf("wal: replay lsn %d (%q): %w", rec.LSN, rec.ID, err)
			}
			e := gallery.Export{ID: rec.ID, DeviceID: rec.DeviceID, Template: tpl}
			if i, ok := byID[rec.ID]; ok {
				entries[i] = e
			} else {
				byID[rec.ID] = len(entries)
				entries = append(entries, e)
			}
		case OpRemove:
			if i, ok := byID[rec.ID]; ok {
				entries = append(entries[:i], entries[i+1:]...)
				delete(byID, rec.ID)
				for j := i; j < len(entries); j++ {
					byID[entries[j].ID] = j
				}
			}
		}
		return nil
	}
	log, info, err := OpenLog(filepath.Join(dir, logName), apply)
	if err != nil {
		return nil, err
	}
	if err := store.ReplaceAll(entries); err != nil {
		log.Close()
		return nil, err
	}
	lsn := snapLSN
	if info.LastLSN > lsn {
		lsn = info.LastLSN
	}
	s := &Store{
		Store:      store,
		dir:        dir,
		opt:        opt,
		log:        log,
		lsn:        lsn,
		compactLSN: snapLSN,
		recovery: RecoveryStats{
			SnapshotLSN:     snapLSN,
			SnapshotEntries: snapCount,
			Replayed:        applied,
			TruncatedBytes:  info.TruncatedBytes,
			TornTail:        info.TornTail,
		},
	}
	s.met = newWALMetrics(opt.Metrics, opt.Shard, s.recovery, log.size)
	if s.met != nil {
		log.fsyncLat = s.met.fsyncLat
	}
	return s, nil
}

// Recovery reports what Open reconstructed.
func (s *Store) Recovery() RecoveryStats {
	return s.recovery
}

// LSN returns the sequence number of the last logged mutation.
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// Enroll applies the enrollment and appends it to the log; the call
// returns only after the record is durable under the configured sync
// policy. If the append fails the enrollment is rolled back, so memory
// and log never diverge.
func (s *Store) Enroll(id, deviceID string, tpl *minutiae.Template) error {
	data, err := minutiae.Marshal(tpl)
	if err != nil {
		return fmt.Errorf("wal: enroll %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: enroll %q: store closed", id)
	}
	if err := s.Store.Enroll(id, deviceID, tpl); err != nil {
		return err
	}
	rec := Record{LSN: s.lsn + 1, Op: OpEnroll, ID: id, DeviceID: deviceID, Template: data}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	if err := s.log.Append(s.opt.Sync == SyncAlways, rec); err != nil {
		s.Store.Remove(id)
		return err
	}
	s.observeAppend(t0)
	s.lsn++
	s.noteMutations(1)
	return nil
}

// EnrollBatch applies every enrollment, then logs the whole batch with
// a single flush — the bulk path the shard rebalancer and preload use.
// On any failure every applied enrollment is rolled back and the log
// gains nothing.
func (s *Store) EnrollBatch(items []gallery.Export) error {
	recs := make([]Record, len(items))
	for i, it := range items {
		data, err := minutiae.Marshal(it.Template)
		if err != nil {
			return fmt.Errorf("wal: enroll %q: %w", it.ID, err)
		}
		recs[i] = Record{Op: OpEnroll, ID: it.ID, DeviceID: it.DeviceID, Template: data}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: enroll batch: store closed")
	}
	rollback := func(n int) {
		for i := 0; i < n; i++ {
			s.Store.Remove(items[i].ID)
		}
	}
	for i, it := range items {
		if err := s.Store.Enroll(it.ID, it.DeviceID, it.Template); err != nil {
			rollback(i)
			return err
		}
		recs[i].LSN = s.lsn + uint64(i) + 1
	}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	if err := s.log.Append(s.opt.Sync == SyncAlways, recs...); err != nil {
		rollback(len(items))
		return err
	}
	s.observeAppend(t0)
	s.lsn += uint64(len(items))
	s.noteMutations(len(items))
	return nil
}

// Remove applies the removal and appends it to the log, with the same
// durability and rollback guarantees as Enroll.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: remove %q: store closed", id)
	}
	prev, had := s.Store.Get(id)
	if err := s.Store.Remove(id); err != nil {
		return err
	}
	rec := Record{LSN: s.lsn + 1, Op: OpRemove, ID: id}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	if err := s.log.Append(s.opt.Sync == SyncAlways, rec); err != nil {
		if had {
			s.Store.Enroll(prev.ID, prev.DeviceID, prev.Template)
		}
		return err
	}
	s.observeAppend(t0)
	s.lsn++
	s.noteMutations(1)
	return nil
}

// observeAppend records a successful append's latency and the log's new
// size; t0 is the zero time when the store is unmetered.
//
//fpvet:hotpath
func (s *Store) observeAppend(t0 time.Time) {
	if s.met == nil {
		return
	}
	s.met.appendLat.ObserveSince(t0)
	s.met.logBytes.Set(s.log.size)
}

// noteMutations advances the compaction counter and compacts when the
// threshold is crossed. An automatic compaction failure is deliberately
// not surfaced to the mutation that tripped it — that mutation IS
// durable in the log; failing it would invite a retry and a duplicate.
// The error resurfaces from the next explicit Compact or Close.
func (s *Store) noteMutations(n int) {
	s.sinceCompact += n
	if s.opt.CompactEvery > 0 && s.sinceCompact >= s.opt.CompactEvery {
		if err := s.compactLocked(); err != nil {
			s.compactErr = err
		}
	}
}

// Compact folds the log into a snapshot and resets the log. Crash-safe
// in both directions: the snapshot is written atomically next to the
// old one, and if the crash lands between snapshot and reset, replay
// skips the records the snapshot already covers.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: compact: store closed")
	}
	if err := s.compactLocked(); err != nil {
		s.compactErr = err
		return err
	}
	err := s.compactErr
	s.compactErr = nil
	return err
}

func (s *Store) compactLocked() error {
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	if err := writeSnapshot(filepath.Join(s.dir, snapName), s.lsn, s.Store.SaveTo); err != nil {
		return err
	}
	if err := s.log.Reset(); err != nil {
		return err
	}
	s.compactLSN = s.lsn
	s.sinceCompact = 0
	if s.met != nil {
		s.met.compacts.Inc()
		s.met.compactLat.ObserveSince(t0)
		s.met.logBytes.Set(s.log.size)
	}
	return nil
}

// LogSize returns the log's current size in bytes.
func (s *Store) LogSize() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Size()
}

// Close fsyncs and closes the log. It also surfaces the last automatic
// compaction failure, if any — the data behind it is still safe in the
// log. The store must not be mutated after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.log.Close()
	if err == nil {
		err = s.compactErr
	}
	return err
}

// LoadFrom always fails: see ErrDirectLoad.
func (s *Store) LoadFrom(io.Reader) error { return ErrDirectLoad }

// LoadFile always fails: see ErrDirectLoad.
func (s *Store) LoadFile(string) error { return ErrDirectLoad }

// ReplaceAll always fails: see ErrDirectLoad.
func (s *Store) ReplaceAll([]gallery.Export) error { return ErrDirectLoad }

package wal

// Replica sync source. A durable store can ship its state to a read
// replica in two pieces: a consistent snapshot capture (the same FPWS
// stream compaction writes to disk, serialized into memory) and the
// log tail above a given LSN. A replica bootstraps from the snapshot,
// then polls the tail; when compaction has discarded the records it
// needs, the tail page comes back Truncated and the replica restarts
// from a fresh snapshot. Both calls run under the store's mutation
// lock, so every page is a consistent prefix of history — a record is
// never shipped before every record below it.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// ErrSnapshotExpired reports a resumed snapshot transfer whose capture
// is gone (the store re-captured for a newer LSN, or restarted). The
// replica restarts the transfer with resumeLSN 0.
var ErrSnapshotExpired = errors.New("wal: sync snapshot expired")

// TailPage is one page of log records shipped to a replica.
type TailPage struct {
	// Records hold every shipped record, in LSN order, all above the
	// requested afterLSN.
	Records []Record
	// PrimaryLSN is the store's LSN at the time of the read; the
	// replica's lag is PrimaryLSN minus its own applied LSN.
	PrimaryLSN uint64
	// Truncated means compaction discarded records the replica still
	// needs: the gap (afterLSN, compaction LSN] is not in the log, so
	// the replica must restart from a snapshot.
	Truncated bool
}

// ApplyRecord applies one shipped record to a replica's gallery with
// replay's idempotent semantics: an enrollment overwrites any existing
// entry under the same ID, and removing a missing ID is a no-op — so
// re-applying a record a crash already delivered cannot diverge the
// replica from the primary.
func ApplyRecord(g *gallery.Store, rec Record) error {
	switch rec.Op {
	case OpEnroll:
		tpl, err := minutiae.Unmarshal(rec.Template)
		if err != nil {
			return fmt.Errorf("wal: apply lsn %d (%q): %w", rec.LSN, rec.ID, err)
		}
		g.Remove(rec.ID)
		return g.Enroll(rec.ID, rec.DeviceID, tpl)
	case OpRemove:
		g.Remove(rec.ID)
		return nil
	default:
		return fmt.Errorf("wal: apply lsn %d: unknown op %d", rec.LSN, rec.Op)
	}
}

// SyncSnapshot returns a consistent serialized snapshot (FPWS stream)
// and the LSN it covers. resumeLSN 0 captures fresh state (or reuses
// the cached capture when nothing mutated since); a non-zero resumeLSN
// asks for the cached capture at exactly that LSN so a chunked
// transfer reads one immutable byte stream, and fails with
// ErrSnapshotExpired when that capture is gone. Callers must treat the
// returned bytes as read-only — they are shared with later calls.
func (s *Store) SyncSnapshot(resumeLSN uint64) (lsn uint64, data []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, errors.New("wal: sync snapshot: store closed")
	}
	if resumeLSN != 0 {
		if s.syncSnapData != nil && s.syncSnapLSN == resumeLSN {
			return resumeLSN, s.syncSnapData, nil
		}
		return 0, nil, ErrSnapshotExpired
	}
	if s.syncSnapData != nil && s.syncSnapLSN == s.lsn {
		return s.lsn, s.syncSnapData, nil
	}
	var buf bytes.Buffer
	if err := writeSnapshotStream(&buf, s.lsn, s.Store.SaveTo); err != nil {
		return 0, nil, err
	}
	s.syncSnapLSN, s.syncSnapData = s.lsn, buf.Bytes()
	return s.syncSnapLSN, s.syncSnapData, nil
}

// SyncTail returns log records with LSN above afterLSN, stopping once
// roughly maxBytes of record bodies have been collected (at least one
// record is returned when any is available, so progress never stalls
// on a single large record). It reads the log file through a private
// handle under the mutation lock: the page is a consistent prefix, and
// the append offset of the live log is untouched.
func (s *Store) SyncTail(afterLSN uint64, maxBytes int) (TailPage, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var page TailPage
	if s.closed {
		return page, errors.New("wal: sync tail: store closed")
	}
	page.PrimaryLSN = s.lsn
	if afterLSN < s.compactLSN {
		page.Truncated = true
		return page, nil
	}
	f, err := os.Open(filepath.Join(s.dir, logName))
	if err != nil {
		return page, fmt.Errorf("wal: sync tail: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return page, fmt.Errorf("wal: sync tail header: %w", err)
	}
	if [4]byte(hdr[:4]) != logMagic {
		return page, ErrBadLogFormat
	}
	var (
		prefix  [8]byte
		bodyBuf []byte
		budget  = maxBytes
	)
	for budget > 0 {
		if _, err := io.ReadFull(br, prefix[:]); err != nil {
			break // end of log (or a partial prefix the lock makes impossible)
		}
		bodyLen := int(binary.BigEndian.Uint32(prefix[:4]))
		sum := binary.BigEndian.Uint32(prefix[4:])
		if bodyLen > maxBody {
			return page, fmt.Errorf("wal: sync tail: implausible record of %d bytes", bodyLen)
		}
		if cap(bodyBuf) < bodyLen {
			bodyBuf = make([]byte, bodyLen)
		}
		body := bodyBuf[:bodyLen]
		if _, err := io.ReadFull(br, body); err != nil {
			return page, fmt.Errorf("wal: sync tail body: %w", err)
		}
		if binary.BigEndian.Uint64(body) <= afterLSN {
			continue // already applied on the replica; skip without decoding
		}
		if crc32.ChecksumIEEE(body) != sum {
			return page, fmt.Errorf("wal: sync tail: record checksum mismatch")
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return page, fmt.Errorf("wal: sync tail: %w", err)
		}
		page.Records = append(page.Records, rec)
		budget -= 8 + bodyLen
	}
	return page, nil
}

package wal

import (
	"bytes"
	"errors"
	"testing"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// applyTail replays shipped tail records onto a plain gallery the way
// a replica does, with WAL replay's idempotent semantics.
func applyTail(t *testing.T, g *gallery.Store, recs []Record) uint64 {
	t.Helper()
	var last uint64
	for _, rec := range recs {
		if rec.LSN <= last {
			t.Fatalf("tail records out of order: %d after %d", rec.LSN, last)
		}
		last = rec.LSN
		switch rec.Op {
		case OpEnroll:
			tpl, err := minutiae.Unmarshal(rec.Template)
			if err != nil {
				t.Fatal(err)
			}
			g.Remove(rec.ID)
			if err := g.Enroll(rec.ID, rec.DeviceID, tpl); err != nil {
				t.Fatal(err)
			}
		case OpRemove:
			g.Remove(rec.ID)
		default:
			t.Fatalf("unknown op %d", rec.Op)
		}
	}
	return last
}

func wantSameEntries(t *testing.T, got, want *gallery.Store) {
	t.Helper()
	ge, we := got.Scan("", 1<<20), want.Scan("", 1<<20)
	if len(ge) != len(we) {
		t.Fatalf("replica holds %d entries, primary %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i].ID != we[i].ID || ge[i].DeviceID != we[i].DeviceID {
			t.Fatalf("entry %d: (%q,%q) vs (%q,%q)", i, ge[i].ID, ge[i].DeviceID, we[i].ID, we[i].DeviceID)
		}
		gb, err := minutiae.Marshal(ge[i].Template)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := minutiae.Marshal(we[i].Template)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("entry %q: template bytes differ", ge[i].ID)
		}
	}
}

func TestSyncSnapshotRoundTrip(t *testing.T) {
	fx := fixtures(t, 6)
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	lsn, data, err := s.SyncSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != s.LSN() {
		t.Fatalf("snapshot lsn %d, store lsn %d", lsn, s.LSN())
	}
	gotLSN, entries, err := DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gotLSN != lsn {
		t.Fatalf("decoded lsn %d, want %d", gotLSN, lsn)
	}
	replica := gallery.New(nil)
	if err := replica.ReplaceAll(entries); err != nil {
		t.Fatal(err)
	}
	wantSameEntries(t, replica, s.Store)

	// A resumed transfer at the capture's LSN must read the same bytes.
	lsn2, data2, err := s.SyncSnapshot(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 != lsn || !bytes.Equal(data, data2) {
		t.Fatal("resumed snapshot diverged from the original capture")
	}
	// A resume for a capture that never existed is expired, not a
	// silent fresh capture — the replica must restart deliberately.
	if _, _, err := s.SyncSnapshot(lsn + 99); !errors.Is(err, ErrSnapshotExpired) {
		t.Fatalf("stale resume: err = %v, want ErrSnapshotExpired", err)
	}
}

func TestSyncSnapshotRecapturesAfterMutation(t *testing.T) {
	fx := fixtures(t, 4)
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	for _, e := range fx[:3] {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	lsn1, _, err := s.SyncSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll(fx[3].ID, fx[3].DeviceID, fx[3].Template); err != nil {
		t.Fatal(err)
	}
	lsn2, data, err := s.SyncSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 != lsn1+1 {
		t.Fatalf("fresh capture at lsn %d, want %d", lsn2, lsn1+1)
	}
	_, entries, err := DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("fresh capture holds %d entries, want 4", len(entries))
	}
}

func TestSyncTailPagesInOrder(t *testing.T) {
	fx := fixtures(t, 8)
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(fx[2].ID); err != nil {
		t.Fatal(err)
	}

	// A 1-byte budget forces one record per page (progress never
	// stalls on a large record), so every paging boundary is exercised.
	replica := gallery.New(nil)
	var after uint64
	pages := 0
	for {
		page, err := s.SyncTail(after, 1)
		if err != nil {
			t.Fatal(err)
		}
		if page.Truncated {
			t.Fatal("tail truncated on an uncompacted log")
		}
		if page.PrimaryLSN != s.LSN() {
			t.Fatalf("primary lsn %d, want %d", page.PrimaryLSN, s.LSN())
		}
		if len(page.Records) == 0 {
			break
		}
		after = applyTail(t, replica, page.Records)
		pages++
	}
	if pages != 9 {
		t.Fatalf("expected 9 single-record pages, got %d", pages)
	}
	if after != s.LSN() {
		t.Fatalf("caught up to lsn %d, primary at %d", after, s.LSN())
	}
	wantSameEntries(t, replica, s.Store)
}

func TestSyncTailTruncatedByCompaction(t *testing.T) {
	fx := fixtures(t, 5)
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The compaction discarded LSNs 1..5: a replica behind that line
	// must be told to restart from a snapshot, not fed a silent gap.
	page, err := s.SyncTail(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !page.Truncated {
		t.Fatal("tail below the compaction LSN not flagged truncated")
	}
	if len(page.Records) != 0 {
		t.Fatalf("truncated page carries %d records", len(page.Records))
	}
	// At the compaction line exactly, the (empty) tail is intact.
	page, err = s.SyncTail(s.LSN(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if page.Truncated || len(page.Records) != 0 {
		t.Fatalf("caught-up tail: truncated=%v records=%d", page.Truncated, len(page.Records))
	}
}

func TestSnapshotPlusTailBootstrap(t *testing.T) {
	fx := fixtures(t, 8)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	for _, e := range fx[:5] {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	snapLSN, data, err := s.SyncSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations land after the capture; the tail carries them.
	for _, e := range fx[5:] {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(fx[0].ID); err != nil {
		t.Fatal(err)
	}

	_, entries, err := DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	replica := gallery.New(nil)
	if err := replica.ReplaceAll(entries); err != nil {
		t.Fatal(err)
	}
	page, err := s.SyncTail(snapLSN, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if page.Truncated {
		t.Fatal("unexpected truncation")
	}
	if got := applyTail(t, replica, page.Records); got != s.LSN() {
		t.Fatalf("applied through lsn %d, primary at %d", got, s.LSN())
	}
	wantSameEntries(t, replica, s.Store)
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpinterop/internal/gallery"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// fixtures captures n distinct subjects on device D0.
func fixtures(t testing.TB, n int) []gallery.Export {
	t.Helper()
	cohort := population.NewCohort(rng.New(20130624), population.CohortOptions{Size: n})
	dev, ok := sensor.ProfileByID("D0")
	if !ok {
		t.Fatal("unknown device D0")
	}
	out := make([]gallery.Export, n)
	for i, subj := range cohort.Subjects {
		g, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = gallery.Export{
			ID:       fmt.Sprintf("subject-%04d", i),
			DeviceID: "D0",
			Template: g.Template,
		}
	}
	return out
}

func openStore(t testing.TB, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, gallery.New(nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ids returns the store's enrolled IDs in scan (lexicographic) order.
func ids(s *Store) []string {
	exps := s.Scan("", 1<<20)
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

func wantIDs(t *testing.T, s *Store, want ...string) {
	t.Helper()
	got := ids(s)
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}

func TestOpenEmptyDir(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	rs := s.Recovery()
	if rs.Replayed != 0 || rs.TornTail || rs.SnapshotLSN != 0 {
		t.Fatalf("recovery = %+v", rs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEnrollRemoveSurviveReopen(t *testing.T) {
	fx := fixtures(t, 4)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(fx[1].ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantIDs(t, s2, fx[0].ID, fx[2].ID, fx[3].ID)
	rs := s2.Recovery()
	if rs.Replayed != 5 {
		t.Fatalf("Replayed = %d, want 5", rs.Replayed)
	}
	if rs.TornTail || rs.TruncatedBytes != 0 {
		t.Fatalf("unexpected torn tail: %+v", rs)
	}
	// Recovered entries must still match: verify one against itself.
	res, err := s2.Verify(fx[0].ID, fx[0].Template)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatal("recovered template no longer verifies against its own capture")
	}
}

func TestCrashWithoutClose(t *testing.T) {
	fx := fixtures(t, 3)
	dir := t.TempDir()
	s := openStore(t, dir, Options{Sync: SyncAlways})
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate the process dying. SyncAlways means every
	// acknowledged enrollment is already on disk.
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantIDs(t, s2, fx[0].ID, fx[1].ID, fx[2].ID)
}

func TestCompactionResetsLogAndResumes(t *testing.T) {
	fx := fixtures(t, 6)
	dir := t.TempDir()
	s := openStore(t, dir, Options{CompactEvery: 4})
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	// 6 enrollments with CompactEvery=4: one compaction fired, two
	// records remain in the log.
	size, err := s.LogSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	rs := s2.Recovery()
	if rs.SnapshotLSN != 4 {
		t.Fatalf("SnapshotLSN = %d, want 4", rs.SnapshotLSN)
	}
	if rs.SnapshotEntries != 4 {
		t.Fatalf("SnapshotEntries = %d, want 4", rs.SnapshotEntries)
	}
	if rs.Replayed != 2 {
		t.Fatalf("Replayed = %d, want 2 (log size %d)", rs.Replayed, size)
	}
	wantIDs(t, s2, fx[0].ID, fx[1].ID, fx[2].ID, fx[3].ID, fx[4].ID, fx[5].ID)
	if s2.LSN() != 6 {
		t.Fatalf("LSN = %d, want 6", s2.LSN())
	}
}

func TestCrashBetweenSnapshotAndLogReset(t *testing.T) {
	fx := fixtures(t, 4)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	// Write the compaction snapshot but "crash" before the log reset:
	// both now cover the same four records.
	if err := writeSnapshot(filepath.Join(dir, snapName), s.LSN(), s.SaveTo); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	rs := s2.Recovery()
	if rs.SnapshotLSN != 4 || rs.Replayed != 0 {
		t.Fatalf("records at or below the snapshot LSN must be skipped: %+v", rs)
	}
	wantIDs(t, s2, fx[0].ID, fx[1].ID, fx[2].ID, fx[3].ID)
}

func TestDuplicateEnrollDoesNotLog(t *testing.T) {
	fx := fixtures(t, 1)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.Enroll(fx[0].ID, "D0", fx[0].Template); err != nil {
		t.Fatal(err)
	}
	before, _ := s.LogSize()
	if err := s.Enroll(fx[0].ID, "D0", fx[0].Template); !errors.Is(err, gallery.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	after, _ := s.LogSize()
	if before != after {
		t.Fatal("rejected enrollment reached the log")
	}
	if err := s.Remove("nobody"); !errors.Is(err, gallery.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if sz, _ := s.LogSize(); sz != after {
		t.Fatal("rejected removal reached the log")
	}
	s.Close()
}

func TestDirectLoadBlocked(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.LoadFrom(strings.NewReader("x")); !errors.Is(err, ErrDirectLoad) {
		t.Fatalf("LoadFrom err = %v", err)
	}
	if err := s.LoadFile("nope"); !errors.Is(err, ErrDirectLoad) {
		t.Fatalf("LoadFile err = %v", err)
	}
	if err := s.ReplaceAll(nil); !errors.Is(err, ErrDirectLoad) {
		t.Fatalf("ReplaceAll err = %v", err)
	}
}

func TestEnrollBatchSurvivesReopen(t *testing.T) {
	fx := fixtures(t, 5)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.EnrollBatch(fx); err != nil {
		t.Fatal(err)
	}
	if s.LSN() != 5 {
		t.Fatalf("LSN = %d, want 5", s.LSN())
	}
	// A batch containing a duplicate must roll back entirely.
	if err := s.EnrollBatch([]gallery.Export{
		{ID: "fresh", DeviceID: "D0", Template: fx[0].Template},
		{ID: fx[1].ID, DeviceID: "D0", Template: fx[1].Template},
	}); !errors.Is(err, gallery.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if s.Has("fresh") {
		t.Fatal("failed batch left a partial enrollment behind")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantIDs(t, s2, fx[0].ID, fx[1].ID, fx[2].ID, fx[3].ID, fx[4].ID)
}

// TestReplayIdempotentAndOrderPreserving drives a random mix of
// enrollments and removals against both the durable store and a plain
// in-memory model, then checks that (a) recovery reconstructs exactly
// the model state, and (b) replaying the same unchanged log again —
// opening the directory a second time — reconstructs the same state
// byte for byte. Replay must be a pure function of the files.
func TestReplayIdempotentAndOrderPreserving(t *testing.T) {
	fx := fixtures(t, 8)
	r := rng.New(42)
	for trial := 0; trial < 5; trial++ {
		dir := t.TempDir()
		s := openStore(t, dir, Options{Sync: SyncNone})
		model := map[string]bool{}
		for step := 0; step < 60; step++ {
			e := fx[r.Intn(len(fx))]
			if r.Bool(0.35) {
				err := s.Remove(e.ID)
				if model[e.ID] != (err == nil) {
					t.Fatalf("trial %d step %d: remove %q err=%v, model has=%v",
						trial, step, e.ID, err, model[e.ID])
				}
				delete(model, e.ID)
			} else {
				err := s.Enroll(e.ID, e.DeviceID, e.Template)
				if model[e.ID] == (err == nil) {
					t.Fatalf("trial %d step %d: enroll %q err=%v, model has=%v",
						trial, step, e.ID, err, model[e.ID])
				}
				model[e.ID] = true
			}
		}
		want := ids(s)
		if len(want) != len(model) {
			t.Fatalf("trial %d: store has %d ids, model %d", trial, len(want), len(model))
		}
		for _, id := range want {
			if !model[id] {
				t.Fatalf("trial %d: store has %q, model does not", trial, id)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Two successive recoveries from the same files: both must
		// equal the live state, in the same scan order.
		for pass := 0; pass < 2; pass++ {
			s2 := openStore(t, dir, Options{})
			got := ids(s2)
			if len(got) != len(want) {
				t.Fatalf("trial %d pass %d: %d ids, want %d", trial, pass, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d pass %d: ids[%d] = %q, want %q",
						trial, pass, i, got[i], want[i])
				}
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// corruptLog opens the log file and overwrites length bytes at off.
func corruptLog(t *testing.T, dir string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func logSizeOnDisk(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	fx := fixtures(t, 3)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	var sizes []int64
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
		sz, err := s.LogSize()
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, sz)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: cut the file a few bytes into it, as if
	// the process died mid-write.
	torn := sizes[1] + (sizes[2]-sizes[1])/3
	if err := os.Truncate(filepath.Join(dir, logName), torn); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	rs := s2.Recovery()
	if !rs.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rs.TruncatedBytes != torn-sizes[1] {
		t.Fatalf("TruncatedBytes = %d, want %d", rs.TruncatedBytes, torn-sizes[1])
	}
	if rs.Replayed != 2 {
		t.Fatalf("Replayed = %d, want 2", rs.Replayed)
	}
	wantIDs(t, s2, fx[0].ID, fx[1].ID)
	if logSizeOnDisk(t, dir) != sizes[1] {
		t.Fatalf("log not truncated back to last good record: %d != %d",
			logSizeOnDisk(t, dir), sizes[1])
	}
	// The log must accept appends after truncation, and they must
	// survive the next recovery.
	if err := s2.Enroll(fx[2].ID, fx[2].DeviceID, fx[2].Template); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	wantIDs(t, s3, fx[0].ID, fx[1].ID, fx[2].ID)
}

func TestCorruptRecordEndsReplay(t *testing.T) {
	fx := fixtures(t, 3)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	var sizes []int64
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
		sz, err := s.LogSize()
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, sz)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of record 2's body. Replay must keep
	// record 1, reject record 2 on checksum, and — because nothing
	// after a bad record can be ordered safely — drop record 3 too.
	corruptLog(t, dir, sizes[0]+40, []byte{0xFF})

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	rs := s2.Recovery()
	if !rs.TornTail {
		t.Fatal("corruption not flagged")
	}
	if rs.Replayed != 1 {
		t.Fatalf("Replayed = %d, want 1", rs.Replayed)
	}
	if rs.TruncatedBytes != sizes[2]-sizes[0] {
		t.Fatalf("TruncatedBytes = %d, want %d", rs.TruncatedBytes, sizes[2]-sizes[0])
	}
	wantIDs(t, s2, fx[0].ID)
}

func TestCorruptLengthPrefixEndsReplay(t *testing.T) {
	fx := fixtures(t, 2)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// An implausible record length (first record's length prefix
	// blasted to ~4 GiB) must not make replay allocate or read past
	// the file.
	corruptLog(t, dir, headerSize, []byte{0xFF, 0xFF, 0xFF, 0xFF})

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	rs := s2.Recovery()
	if !rs.TornTail || rs.Replayed != 0 {
		t.Fatalf("recovery = %+v, want torn tail with 0 replayed", rs)
	}
	if s2.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s2.Len())
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("NOTALOG-at-all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, gallery.New(nil), Options{})
	if !errors.Is(err, ErrBadLogFormat) {
		t.Fatalf("err = %v, want ErrBadLogFormat", err)
	}
}

func TestTornHeaderStartsFresh(t *testing.T) {
	dir := t.TempDir()
	// A crash before the 6-byte header landed cannot have lost any
	// acknowledged record; the log restarts empty.
	if err := os.WriteFile(filepath.Join(dir, logName), []byte{0xAB, 0xCD}, 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, Options{})
	defer s.Close()
	rs := s.Recovery()
	if !rs.TornTail || rs.TruncatedBytes != 2 {
		t.Fatalf("recovery = %+v", rs)
	}
	fx := fixtures(t, 1)
	if err := s.Enroll(fx[0].ID, fx[0].DeviceID, fx[0].Template); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	fx := fixtures(t, 2)
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for _, e := range fx {
		if err := s.Enroll(e.ID, e.DeviceID, e.Template); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A mangled snapshot is unrecoverable silently — unlike a torn log
	// tail it may be missing arbitrary interior data — so Open must
	// refuse rather than serve a partial gallery.
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, gallery.New(nil), Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
